"""The execution bridge: event loop on one side, ``repro.exec`` on the other.

:class:`PoolRunner` owns a small :class:`~concurrent.futures.ThreadPoolExecutor`
and one asyncio worker coroutine per slot.  Workers pull job ids off the
:class:`~repro.serve.queue.JobQueue`, mark the job ``running``, and push
the actual work through ``loop.run_in_executor`` so the event loop never
blocks on a simulation.  Each executor call is one
:func:`repro.exec.pool.run_tasks` invocation with ``jobs=1`` — in-process
serial execution on the bridge thread, cache-first against the shared
:class:`~repro.exec.cache.ResultCache` — which is exactly what the parity
acceptance test compares the HTTP results against.

Per-job wall-clock timeouts are enforced here with ``asyncio.wait_for``
rather than the worker's ``SIGALRM`` path (signals only work on the main
thread; see the main-thread guard in :mod:`repro.exec.worker`).  A timed
-out simulation cannot be interrupted mid-thread — the slot stays busy
until it finishes — so the job is marked ``timeout`` immediately while
the thread winds down in the background; admission sees the lost
capacity through the measured residual rate, which is the point.

Shutdown is two-phase: :meth:`close` stops intake (the server has
already stopped admitting), then :meth:`drain` waits for every queued
job to reach a terminal state, releases the workers with sentinels, and
retires the executor.
"""

from __future__ import annotations

import asyncio
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

from repro.exec.cache import ResultCache
from repro.exec.fingerprint import SourceIndex
from repro.exec.pool import ExecResult, run_tasks
from repro.exec.spec import TaskSpec
from repro.serve.queue import Job, JobQueue, JobStore


def execute_spec(spec: TaskSpec, *, cache: ResultCache | None = None,
                 retries: int = 1,
                 index: SourceIndex | None = None) -> ExecResult:
    """Run one spec to completion on the calling thread, cache-first.

    Module-level so tests can call the exact code path the executor
    threads run; ``jobs=1`` keeps execution in-process (no nested pool).
    """
    return run_tasks([spec], jobs=1, cache=cache, retries=retries,
                     index=index)[0]


class PoolRunner:
    """Runs queued jobs on a thread-pool bridge off the event loop."""

    def __init__(self, store: JobStore, queue: JobQueue, *,
                 slots: int = 2, cache: ResultCache | None = None,
                 retries: int = 1, job_timeout: float | None = None,
                 index: SourceIndex | None = None,
                 on_done: Callable[[Job], None] | None = None,
                 clock: Callable[[], float] = time.monotonic):
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots!r}")
        self.store = store
        self.queue = queue
        self.slots = slots
        self.cache = cache
        self.retries = retries
        self.job_timeout = job_timeout
        self.index = index
        self.on_done = on_done
        self.clock = clock
        self.active = 0          # jobs currently on a bridge thread
        self.completed_total = 0
        self._executor: ThreadPoolExecutor | None = None
        self._workers: list[asyncio.Task[None]] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the executor and one worker coroutine per slot."""
        if self._executor is not None:
            raise RuntimeError("runner already started")
        self._executor = ThreadPoolExecutor(
            max_workers=self.slots, thread_name_prefix="repro-serve")
        loop = asyncio.get_running_loop()
        self._workers = [
            loop.create_task(self._worker(), name=f"serve-worker-{i}")
            for i in range(self.slots)]

    async def drain(self) -> None:
        """Finish every queued job, then retire workers and executor."""
        await self.queue.join()
        for _ in self._workers:
            self.queue.put_sentinel()
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        if self._executor is not None:
            # wait=False: a timed-out simulation may still hold a thread;
            # every *job* is already terminal, so nothing is lost
            self._executor.shutdown(wait=False)
            self._executor = None

    # ------------------------------------------------------------------
    # the worker loop
    # ------------------------------------------------------------------
    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job_id = await self.queue.get()
            try:
                if job_id is None:
                    return
                job = self.store.get(job_id)
                if job is None or job.done:   # pragma: no cover - guard
                    continue
                await self._run_job(loop, job)
            finally:
                self.queue.task_done()

    async def _run_job(self, loop: asyncio.AbstractEventLoop,
                       job: Job) -> None:
        self.store.mark(job, state="running", started_at=self.clock())
        self.active += 1
        try:
            future = loop.run_in_executor(
                self._executor, self._execute, job.spec)
            if self.job_timeout is not None:
                result = await asyncio.wait_for(
                    asyncio.shield(future), self.job_timeout)
            else:
                result = await future
        except asyncio.TimeoutError:
            self.store.mark(
                job, state="timeout", finished_at=self.clock(),
                error=f"job exceeded the server's {self.job_timeout:g}s "
                      f"wall budget")
            return
        except Exception:
            self.store.mark(job, state="error",
                            finished_at=self.clock(),
                            error=traceback.format_exc())
            return
        else:
            self.store.mark(
                job, state=result.status, finished_at=self.clock(),
                cached=result.cached, attempts=result.attempts,
                fingerprint=result.fingerprint, error=result.error,
                payload=result.payload)
        finally:
            self.active -= 1
            self.completed_total += 1
            if self.on_done is not None:
                self.on_done(job)

    def _execute(self, spec: TaskSpec) -> ExecResult:
        return execute_spec(spec, cache=self.cache,
                            retries=self.retries, index=self.index)
