"""Unit tests for ATM cell types."""

from repro.atm import Cell, RMCell, RMDirection


def test_data_cell_defaults():
    cell = Cell(vc="A", seq=7)
    assert cell.vc == "A"
    assert cell.seq == 7
    assert cell.efci is False
    assert cell.is_rm is False


def test_rm_cell_defaults_forward():
    rm = RMCell(vc="A", ccr=8.5, er=150.0)
    assert rm.is_rm is True
    assert rm.direction is RMDirection.FORWARD
    assert rm.ci is False
    assert rm.ni is False


def test_turn_around_flips_direction_only():
    rm = RMCell(vc="A", ccr=8.5, er=150.0, ci=True)
    rm.turn_around()
    assert rm.direction is RMDirection.BACKWARD
    assert rm.ccr == 8.5
    assert rm.er == 150.0
    assert rm.ci is True


def test_efci_bit_mutable():
    cell = Cell(vc="A")
    cell.efci = True
    assert cell.efci
