"""Unit tests for serializing links."""

import pytest

from repro.atm import Cell, Link
from repro.sim import Simulator, units


class Collector:
    """Test sink recording (time, cell) deliveries."""

    def __init__(self, sim):
        self.sim = sim
        self.deliveries = []

    def receive(self, cell):
        self.deliveries.append((self.sim.now, cell))


def test_single_cell_delivery_time():
    sim = Simulator()
    sink = Collector(sim)
    link = Link(sim, rate_mbps=150.0, propagation=1e-5, sink=sink)
    link.send(Cell(vc="A", seq=0))
    sim.run()
    assert len(sink.deliveries) == 1
    t, cell = sink.deliveries[0]
    assert t == pytest.approx(units.cell_time(150.0) + 1e-5)
    assert cell.seq == 0


def test_back_to_back_cells_serialized():
    sim = Simulator()
    sink = Collector(sim)
    link = Link(sim, rate_mbps=150.0, propagation=0.0, sink=sink)
    for i in range(3):
        link.send(Cell(vc="A", seq=i))
    sim.run()
    times = [t for t, _ in sink.deliveries]
    ct = units.cell_time(150.0)
    assert times == pytest.approx([ct, 2 * ct, 3 * ct])
    assert [c.seq for _, c in sink.deliveries] == [0, 1, 2]


def test_cells_preserve_fifo_order_with_gaps():
    sim = Simulator()
    sink = Collector(sim)
    link = Link(sim, rate_mbps=150.0, propagation=1e-4, sink=sink)
    link.send(Cell(vc="A", seq=0))
    sim.schedule(1e-3, link.send, Cell(vc="A", seq=1))
    sim.run()
    assert [c.seq for _, c in sink.deliveries] == [0, 1]
    assert link.delivered == 2
    assert link.queued == 0


def test_receive_is_send_alias():
    sim = Simulator()
    sink = Collector(sim)
    link = Link(sim, rate_mbps=150.0, propagation=0.0, sink=sink)
    link.receive(Cell(vc="A"))
    sim.run()
    assert len(sink.deliveries) == 1


def test_negative_propagation_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Link(sim, rate_mbps=150.0, propagation=-1.0, sink=Collector(sim))
