"""Integration tests: full ATM networks end to end (FIFO algorithm).

These tests exercise the whole substrate — sources pacing cells through
access links, switches, trunk ports and back — without any rate-control
algorithm, so expected throughputs are pure link arithmetic.
"""

import pytest

from repro.atm import AtmNetwork, PortAlgorithm, RMCell, RMDirection
from repro.sim import units


def test_single_session_end_to_end_delivery():
    net = AtmNetwork()
    net.add_switch("S1")
    net.add_switch("S2")
    net.connect("S1", "S2")
    session = net.add_session("A", route=["S1", "S2"])
    net.run(until=0.01)
    # ICR = 8.5 Mb/s with no feedback increase (default FIFO algorithm
    # never grants more; ER stays at PCR so ACR actually climbs...)
    assert session.destination.data_received > 0
    assert session.destination.rm_received > 0
    assert session.source.backward_rms_seen > 0


def test_fifo_network_source_reaches_pcr():
    # with no algorithm marking, backward RMs carry ER=PCR and CI=0,
    # so the source climbs to PCR by additive increase
    net = AtmNetwork()
    net.add_switch("S1")
    net.add_switch("S2")
    net.connect("S1", "S2")
    session = net.add_session("A", route=["S1", "S2"])
    net.run(until=0.02)
    assert session.source.acr == pytest.approx(150.0)


def test_goodput_meter_tracks_throughput():
    net = AtmNetwork(meter_interval=1e-3)
    net.add_switch("S1")
    net.add_switch("S2")
    net.connect("S1", "S2")
    session = net.add_session("A", route=["S1", "S2"])
    net.run(until=0.05)
    # steady state: source at PCR=150, minus 1/32 RM overhead
    data_rate = 150.0 * 31 / 32
    assert session.rate_probe.last == pytest.approx(data_rate, rel=0.05)


def test_two_sessions_share_trunk_fifo():
    # without flow control both climb to PCR and overload the trunk;
    # the shared queue must grow and split roughly evenly
    net = AtmNetwork()
    net.add_switch("S1")
    net.add_switch("S2")
    net.connect("S1", "S2")
    a = net.add_session("A", route=["S1", "S2"])
    b = net.add_session("B", route=["S1", "S2"])
    net.run(until=0.05)
    trunk = net.trunk("S1", "S2")
    assert trunk.queue_len > 100  # unbounded FIFO queue blows up
    total = (a.destination.data_received + a.destination.rm_received
             + b.destination.data_received + b.destination.rm_received)
    # trunk is the bottleneck: deliveries bounded by line rate
    assert total <= units.mbps_to_cells_per_sec(150.0) * 0.05 + 2


def test_session_rtt_via_access_delay():
    # backward RM round trip: 4 access-link hops + trunk hops
    net = AtmNetwork()
    net.add_switch("S1")
    net.add_switch("S2")
    net.connect("S1", "S2")
    session = net.add_session("A", route=["S1", "S2"], access_delay=1e-3)
    net.run(until=0.0001)
    assert session.source.backward_rms_seen == 0  # rtt > 2 ms
    net.run(until=0.01)
    assert session.source.backward_rms_seen > 0


def test_parking_lot_routes():
    net = AtmNetwork()
    for name in ("S1", "S2", "S3"):
        net.add_switch(name)
    net.connect("S1", "S2")
    net.connect("S2", "S3")
    long = net.add_session("L", route=["S1", "S2", "S3"])
    short = net.add_session("X", route=["S2", "S3"])
    net.run(until=0.01)
    assert long.destination.data_received > 0
    assert short.destination.data_received > 0


def test_start_time_staggers_sessions():
    net = AtmNetwork()
    net.add_switch("S1")
    net.add_switch("S2")
    net.connect("S1", "S2")
    a = net.add_session("A", route=["S1", "S2"])
    b = net.add_session("B", route=["S1", "S2"], start=0.02)
    net.run(until=0.01)
    assert a.destination.data_received > 0
    assert b.destination.data_received == 0
    net.run(until=0.04)
    assert b.destination.data_received > 0


def test_duplicate_names_rejected():
    net = AtmNetwork()
    net.add_switch("S1")
    with pytest.raises(ValueError):
        net.add_switch("S1")
    net.add_switch("S2")
    net.connect("S1", "S2")
    with pytest.raises(ValueError):
        net.connect("S1", "S2")
    net.add_session("A", route=["S1", "S2"])
    with pytest.raises(ValueError):
        net.add_session("A", route=["S1", "S2"])
    with pytest.raises(ValueError):
        net.add_session("B", route=[])


def test_algorithm_factory_instantiated_per_port():
    instances = []

    class Tagger(PortAlgorithm):
        def __init__(self):
            super().__init__()
            instances.append(self)

    net = AtmNetwork(algorithm_factory=Tagger)
    net.add_switch("S1")
    net.add_switch("S2")
    net.add_switch("S3")
    net.connect("S1", "S2")
    net.connect("S2", "S3")
    assert len(instances) == 4  # two directed ports per trunk
    assert len({id(i) for i in instances}) == 4


def test_er_marking_algorithm_controls_source():
    class CapAt20(PortAlgorithm):
        name = "cap20"

        def on_backward_rm(self, rm):
            rm.er = min(rm.er, 20.0)

    net = AtmNetwork(algorithm_factory=CapAt20)
    net.add_switch("S1")
    net.add_switch("S2")
    net.connect("S1", "S2")
    session = net.add_session("A", route=["S1", "S2"])
    net.run(until=0.02)
    assert session.source.acr == pytest.approx(20.0)
