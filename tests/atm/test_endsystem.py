"""Unit tests for ABR source and destination end systems."""

import pytest

from repro.atm import (AbrDestination, AbrParams, AbrSource, Cell, RMCell,
                       RMDirection)
from repro.sim import Simulator, units


class Collector:
    def __init__(self, sim):
        self.sim = sim
        self.cells = []

    def receive(self, cell):
        self.cells.append((self.sim.now, cell))

    send = receive


def make_source(sim, **kwargs):
    params = kwargs.pop("params", AbrParams())
    src = AbrSource(sim, "A", params=params, **kwargs)
    sink = Collector(sim)
    src.attach_link(sink)
    return src, sink


def backward_rm(er=150.0, ci=False, ni=False, ccr=0.0):
    return RMCell(vc="A", direction=RMDirection.BACKWARD,
                  er=er, ci=ci, ni=ni, ccr=ccr)


def test_source_starts_at_icr_and_paces():
    sim = Simulator()
    src, sink = make_source(sim)
    src.start()
    sim.run(until=0.001)
    assert src.acr == 8.5
    # at 8.5 Mb/s one cell every 424/8.5e6 s ~= 49.9 us -> ~20 cells in 1ms
    expected = int(0.001 / units.cell_time(8.5)) + 1
    assert abs(len(sink.cells) - expected) <= 1
    gaps = [t2 - t1 for (t1, _), (t2, _) in zip(sink.cells, sink.cells[1:])]
    assert all(g == pytest.approx(units.cell_time(8.5)) for g in gaps)


def test_first_cell_is_forward_rm_every_nrm():
    sim = Simulator()
    src, sink = make_source(sim, params=AbrParams(nrm=4))
    src.start()
    sim.run(until=units.cell_time(8.5) * 8.5)
    kinds = [c.is_rm for _, c in sink.cells]
    assert kinds[0] is True
    assert kinds[4] is True
    assert not any(kinds[1:4])
    rm = sink.cells[0][1]
    assert rm.direction is RMDirection.FORWARD
    assert rm.ccr == 8.5
    assert rm.er == 150.0


def test_start_time_honoured():
    sim = Simulator()
    src, sink = make_source(sim, start_time=0.01)
    src.start()
    sim.run(until=0.0099)
    assert sink.cells == []
    sim.run(until=0.0101)
    assert sink.cells
    assert sink.cells[0][0] == pytest.approx(0.01)


def test_additive_increase_on_clean_rm():
    sim = Simulator()
    src, _ = make_source(sim)
    src.start()
    src.receive(backward_rm(er=150.0))
    assert src.acr == pytest.approx(8.5 + 42.5)


def test_increase_capped_by_er_and_pcr():
    sim = Simulator()
    src, _ = make_source(sim)
    src.start()
    src.receive(backward_rm(er=20.0))
    assert src.acr == pytest.approx(20.0)
    for _ in range(10):
        src.receive(backward_rm(er=1000.0))
    assert src.acr == 150.0  # PCR cap


def test_ci_multiplicative_decrease():
    sim = Simulator()
    src, _ = make_source(sim)
    src.start()
    src.receive(backward_rm(er=150.0, ci=True))
    assert src.acr == pytest.approx(8.5 * 0.875)


def test_ni_freezes_rate():
    sim = Simulator()
    src, _ = make_source(sim)
    src.start()
    src.receive(backward_rm(er=150.0, ni=True))
    assert src.acr == pytest.approx(8.5)


def test_rate_floor_is_tcr():
    sim = Simulator()
    src, _ = make_source(sim)
    src.start()
    for _ in range(200):
        src.receive(backward_rm(er=150.0, ci=True))
    assert src.acr == pytest.approx(AbrParams().tcr_mbps)


def test_er_below_floor_clamped():
    sim = Simulator()
    src, _ = make_source(sim)
    src.start()
    src.receive(backward_rm(er=0.0))
    assert src.acr == pytest.approx(AbrParams().tcr_mbps)


def test_rate_increase_pulls_next_emission_earlier():
    sim = Simulator()
    src, sink = make_source(sim)
    src.start()
    sim.run(until=1e-6)  # first cell emitted at t=0
    src.receive(backward_rm(er=150.0))  # acr jumps to 51 Mb/s
    sim.run(until=0.001)
    # second emission should come ~1/51Mb/s after the first, not 1/8.5
    gap = sink.cells[1][0] - sink.cells[0][0]
    assert gap == pytest.approx(units.cell_time(8.5 + 42.5))


def test_set_active_false_stops_emission():
    sim = Simulator()
    src, sink = make_source(sim)
    src.start()
    sim.run(until=0.001)
    sent = len(sink.cells)
    src.set_active(False)
    sim.run(until=0.002)
    assert len(sink.cells) == sent


def test_reactivation_after_long_idle_resets_to_icr():
    sim = Simulator()
    src, _ = make_source(sim, params=AbrParams(idle_reset=0.01))
    src.start()
    for _ in range(5):
        src.receive(backward_rm(er=150.0))
    assert src.acr > 100.0
    sim.run(until=0.001)
    src.set_active(False)
    sim.run(until=0.1)  # idle 99 ms > idle_reset
    src.set_active(True)
    assert src.acr == 8.5


def test_reactivation_after_short_idle_keeps_acr():
    sim = Simulator()
    src, _ = make_source(sim, params=AbrParams(idle_reset=0.05))
    src.start()
    for _ in range(5):
        src.receive(backward_rm(er=150.0))
    acr = src.acr
    sim.run(until=0.001)
    src.set_active(False)
    sim.run(until=0.002)
    src.set_active(True)
    assert src.acr == acr


def test_source_rejects_forward_rm_and_data():
    sim = Simulator()
    src, _ = make_source(sim)
    with pytest.raises(ValueError):
        src.receive(RMCell(vc="A", direction=RMDirection.FORWARD))
    with pytest.raises(TypeError):
        src.receive(Cell(vc="A"))


def test_source_requires_link_and_single_start():
    sim = Simulator()
    src = AbrSource(sim, "A")
    with pytest.raises(RuntimeError):
        src.start()
    src.attach_link(Collector(sim))
    src.start()
    with pytest.raises(RuntimeError):
        src.start()


def test_acr_probe_records_changes():
    sim = Simulator()
    src, _ = make_source(sim)
    src.start()
    sim.run(until=1e-6)
    src.receive(backward_rm(er=150.0))
    assert src.acr_probe.values[0] == 8.5
    assert src.acr_probe.last == pytest.approx(51.0)


# ----------------------------------------------------------------------
# destination
# ----------------------------------------------------------------------

def test_destination_counts_data_and_turns_rm_around():
    sim = Simulator()
    dest = AbrDestination(sim, "A")
    rev = Collector(sim)
    dest.attach_reverse(rev)
    dest.receive(Cell(vc="A"))
    dest.receive(Cell(vc="A"))
    rm = RMCell(vc="A", direction=RMDirection.FORWARD, ccr=8.5, er=150.0)
    dest.receive(rm)
    assert dest.data_received == 2
    assert dest.rm_received == 1
    assert len(rev.cells) == 1
    assert rm.direction is RMDirection.BACKWARD


def test_destination_efci_to_ci():
    sim = Simulator()
    dest = AbrDestination(sim, "A", efci_to_ci=True)
    dest.attach_reverse(Collector(sim))
    marked = Cell(vc="A", efci=True)
    dest.receive(marked)
    rm = RMCell(vc="A", direction=RMDirection.FORWARD)
    dest.receive(rm)
    assert rm.ci is True
    # state cleared after use
    rm2 = RMCell(vc="A", direction=RMDirection.FORWARD)
    dest.receive(rm2)
    assert rm2.ci is False


def test_destination_efci_state_follows_last_data_cell():
    sim = Simulator()
    dest = AbrDestination(sim, "A", efci_to_ci=True)
    dest.attach_reverse(Collector(sim))
    dest.receive(Cell(vc="A", efci=True))
    dest.receive(Cell(vc="A", efci=False))  # last cell unmarked
    rm = RMCell(vc="A", direction=RMDirection.FORWARD)
    dest.receive(rm)
    assert rm.ci is False


def test_destination_efci_disabled():
    sim = Simulator()
    dest = AbrDestination(sim, "A", efci_to_ci=False)
    dest.attach_reverse(Collector(sim))
    dest.receive(Cell(vc="A", efci=True))
    rm = RMCell(vc="A", direction=RMDirection.FORWARD)
    dest.receive(rm)
    assert rm.ci is False


def test_destination_validates_input():
    sim = Simulator()
    dest = AbrDestination(sim, "A")
    with pytest.raises(ValueError):
        dest.receive(Cell(vc="B"))
    with pytest.raises(ValueError):
        dest.receive(RMCell(vc="A", direction=RMDirection.BACKWARD))
    with pytest.raises(RuntimeError):
        dest.receive(RMCell(vc="A", direction=RMDirection.FORWARD))
