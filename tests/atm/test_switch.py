"""Unit tests for switch routing and backward-RM marking."""

import pytest

from repro.atm import (AtmSwitch, Cell, OutputPort, RMCell, RMDirection,
                       RoutingError)
from repro.sim import Simulator

from tests.atm.test_link import Collector
from tests.atm.test_port import RecordingAlgorithm


def build_switch(sim):
    """Switch with one forward OutputPort and one backward Collector."""
    switch = AtmSwitch(sim, "S1")
    fwd_sink = Collector(sim)
    bwd_sink = Collector(sim)
    alg = RecordingAlgorithm()
    fwd_port = OutputPort(sim, "S1->S2", rate_mbps=150.0, sink=fwd_sink,
                          algorithm=alg)
    switch.connect_session("A", forward=fwd_port, backward=bwd_sink)
    return switch, fwd_port, fwd_sink, bwd_sink, alg


def test_forward_cells_routed_to_forward_port():
    sim = Simulator()
    switch, _, fwd_sink, bwd_sink, _ = build_switch(sim)
    switch.receive(Cell(vc="A"))
    switch.receive(RMCell(vc="A", direction=RMDirection.FORWARD))
    sim.run()
    assert len(fwd_sink.deliveries) == 2
    assert bwd_sink.deliveries == []


def test_backward_rm_routed_backward_and_marked():
    sim = Simulator()
    switch, _, fwd_sink, bwd_sink, alg = build_switch(sim)
    rm = RMCell(vc="A", direction=RMDirection.BACKWARD, er=150.0)
    switch.receive(rm)
    sim.run()
    assert fwd_sink.deliveries == []
    assert len(bwd_sink.deliveries) == 1
    # the forward port's algorithm saw the backward RM (marking hook)
    assert ("backward_rm", rm) in alg.calls


def test_backward_rm_without_control_port_unmarked():
    sim = Simulator()
    switch = AtmSwitch(sim, "S")
    fwd_sink, bwd_sink = Collector(sim), Collector(sim)
    # forward route is a plain sink (e.g. destination access link)
    switch.connect_session("A", forward=fwd_sink, backward=bwd_sink)
    switch.receive(RMCell(vc="A", direction=RMDirection.BACKWARD))
    assert len(bwd_sink.deliveries) == 1


def test_unknown_vc_raises():
    sim = Simulator()
    switch, *_ = build_switch(sim)
    with pytest.raises(RoutingError):
        switch.receive(Cell(vc="Z"))
    with pytest.raises(RoutingError):
        switch.receive(RMCell(vc="Z", direction=RMDirection.BACKWARD))


def test_duplicate_session_rejected():
    sim = Simulator()
    switch, *_ = build_switch(sim)
    with pytest.raises(ValueError):
        switch.connect_session("A", forward=Collector(sim),
                               backward=Collector(sim))


def test_two_sessions_isolated():
    sim = Simulator()
    switch = AtmSwitch(sim, "S")
    sinks = {vc: Collector(sim) for vc in "AB"}
    for vc, sink in sinks.items():
        switch.connect_session(vc, forward=sink, backward=Collector(sim))
    switch.receive(Cell(vc="A"))
    switch.receive(Cell(vc="B"))
    switch.receive(Cell(vc="B"))
    assert len(sinks["A"].deliveries) == 1
    assert len(sinks["B"].deliveries) == 2
