"""Failure injection: the ABR control loop must survive cell loss."""

import random

import pytest

from repro.atm import AtmNetwork, Cell, Link, OutputPort
from repro.core import PhantomAlgorithm, phantom_equilibrium_rate
from repro.sim import Simulator

from tests.atm.test_link import Collector


def test_link_loss_rate_drops_cells():
    sim = Simulator()
    sink = Collector(sim)
    link = Link(sim, rate_mbps=150.0, propagation=0.0, sink=sink,
                loss_rate=0.5, rng=random.Random(3))
    for i in range(1000):
        link.send(Cell(vc="A", seq=i))
    sim.run()
    assert link.lost + link.delivered == 1000
    assert 350 < link.lost < 650  # ~50%


def test_zero_loss_by_default():
    sim = Simulator()
    sink = Collector(sim)
    link = Link(sim, rate_mbps=150.0, propagation=0.0, sink=sink)
    for i in range(100):
        link.send(Cell(vc="A", seq=i))
    sim.run()
    assert link.lost == 0
    assert link.delivered == 100


def test_output_port_into_lossy_link_keeps_loss():
    """Composition regression: a port wired to a lossy link must not
    bypass loss injection via the link's ``receive_at`` fast path —
    the rng is drawn on the evented path only."""
    sim = Simulator()
    sink = Collector(sim)
    link = Link(sim, rate_mbps=150.0, propagation=0.0, sink=sink,
                loss_rate=0.5, rng=random.Random(3))
    port = OutputPort(sim, "P", rate_mbps=150.0, sink=link,
                      propagation=1e-6)
    assert port._deliver_at is None  # lossy sinks never compose
    for i in range(1000):
        port.receive(Cell(vc="A", seq=i))
    sim.run()
    assert port.departures == 1000
    assert link.lost + link.delivered == 1000
    assert 350 < link.lost < 650  # ~50%


def test_lossy_link_receive_at_falls_back_to_evented_path():
    """Backstop regression: even a direct ``receive_at`` on a lossy
    link must route through the evented loss path, not the lossless
    delivery shortcut."""
    sim = Simulator()
    sink = Collector(sim)
    link = Link(sim, rate_mbps=150.0, propagation=0.0, sink=sink,
                loss_rate=0.5, rng=random.Random(3))
    for i in range(1000):
        link.receive_at(Cell(vc="A", seq=i), i * link.cell_time)
    sim.run()
    assert link.lost + link.delivered == 1000
    assert 350 < link.lost < 650  # ~50%


def test_invalid_loss_rate():
    sim = Simulator()
    with pytest.raises(ValueError):
        Link(sim, 150.0, 0.0, Collector(sim), loss_rate=1.0)
    with pytest.raises(ValueError):
        Link(sim, 150.0, 0.0, Collector(sim), loss_rate=-0.1)


def test_phantom_converges_despite_rm_loss():
    """1% loss on every access link: lost RM cells delay but must not
    break convergence — the Trm backstop regenerates the loop."""
    net = AtmNetwork(algorithm_factory=PhantomAlgorithm)
    net.add_switch("S1")
    net.add_switch("S2")
    net.connect("S1", "S2")
    a = net.add_session("A", route=["S1", "S2"])
    b = net.add_session("B", route=["S1", "S2"])
    # inject loss by wrapping each session's backward access link; the
    # switch dispatches through its per-VC bound-method cache, so the
    # cache must be rewired along with the route table
    lossy_links = []
    for i, session in enumerate((a, b)):
        switch = net.switches["S1"]
        lossy = Link(net.sim, 150.0, 1e-5, session.source,
                     loss_rate=0.01, rng=random.Random(10 + i))
        switch._backward[session.vc] = lossy
        switch._backward_recv[session.vc] = lossy.receive
        lossy_links.append(lossy)
    net.run(until=0.4)
    # the injection itself must be live (guards against dispatch-cache
    # rot silently turning this test into a no-loss run)
    assert sum(link.lost for link in lossy_links) > 0
    expected = phantom_equilibrium_rate(150.0, 2, 5.0)
    assert a.source.acr == pytest.approx(expected, rel=0.2)
    assert b.source.acr == pytest.approx(expected, rel=0.2)
