"""Failure injection: the ABR control loop must survive cell loss."""

import random

import pytest

from repro.atm import AtmNetwork, Cell, Link
from repro.core import PhantomAlgorithm, phantom_equilibrium_rate
from repro.sim import Simulator

from tests.atm.test_link import Collector


def test_link_loss_rate_drops_cells():
    sim = Simulator()
    sink = Collector(sim)
    link = Link(sim, rate_mbps=150.0, propagation=0.0, sink=sink,
                loss_rate=0.5, rng=random.Random(3))
    for i in range(1000):
        link.send(Cell(vc="A", seq=i))
    sim.run()
    assert link.lost + link.delivered == 1000
    assert 350 < link.lost < 650  # ~50%


def test_zero_loss_by_default():
    sim = Simulator()
    sink = Collector(sim)
    link = Link(sim, rate_mbps=150.0, propagation=0.0, sink=sink)
    for i in range(100):
        link.send(Cell(vc="A", seq=i))
    sim.run()
    assert link.lost == 0
    assert link.delivered == 100


def test_invalid_loss_rate():
    sim = Simulator()
    with pytest.raises(ValueError):
        Link(sim, 150.0, 0.0, Collector(sim), loss_rate=1.0)
    with pytest.raises(ValueError):
        Link(sim, 150.0, 0.0, Collector(sim), loss_rate=-0.1)


def test_phantom_converges_despite_rm_loss():
    """1% loss on every access link: lost RM cells delay but must not
    break convergence — the Trm backstop regenerates the loop."""
    net = AtmNetwork(algorithm_factory=PhantomAlgorithm)
    net.add_switch("S1")
    net.add_switch("S2")
    net.connect("S1", "S2")
    a = net.add_session("A", route=["S1", "S2"])
    b = net.add_session("B", route=["S1", "S2"])
    # inject loss by wrapping each session's backward access link
    for i, session in enumerate((a, b)):
        switch = net.switches["S1"]
        lossy = Link(net.sim, 150.0, 1e-5, session.source,
                     loss_rate=0.01, rng=random.Random(10 + i))
        switch._backward[session.vc] = lossy
    net.run(until=0.4)
    expected = phantom_equilibrium_rate(150.0, 2, 5.0)
    assert a.source.acr == pytest.approx(expected, rel=0.2)
    assert b.source.acr == pytest.approx(expected, rel=0.2)
