"""Unit tests for ABR parameter validation and derived values."""

import pytest

from repro.atm import AbrParams, PAPER_PARAMS


def test_paper_defaults_match_paper():
    p = PAPER_PARAMS
    assert p.pcr == 150.0
    assert p.icr == 8.5
    assert p.nrm == 32
    assert p.air_nrm == 42.5
    assert p.rdf == 256.0
    assert p.tof == 2.0


def test_tcr_is_4_24_kbps():
    assert PAPER_PARAMS.tcr_mbps == pytest.approx(0.00424)


def test_decrease_factor():
    # 1 - 32/256 = 0.875
    assert PAPER_PARAMS.decrease_factor == pytest.approx(0.875)


def test_floor_is_max_of_mcr_tcr():
    assert PAPER_PARAMS.floor_mbps == PAPER_PARAMS.tcr_mbps
    p = AbrParams(mcr=1.0)
    assert p.floor_mbps == 1.0


@pytest.mark.parametrize("kwargs", [
    {"pcr": 0.0},
    {"icr": 0.0},
    {"icr": 200.0},
    {"mcr": -1.0},
    {"mcr": 151.0},
    {"nrm": 1},
    {"air_nrm": 0.0},
    {"rdf": 16.0},  # must exceed nrm
])
def test_invalid_params_rejected(kwargs):
    with pytest.raises(ValueError):
        AbrParams(**kwargs)


def test_params_frozen():
    with pytest.raises(AttributeError):
        PAPER_PARAMS.pcr = 100.0
