"""Unit tests for output ports and the algorithm hook protocol."""

import pytest

from repro.atm import Cell, OutputPort, PortAlgorithm, RMCell, RMDirection
from repro.sim import Simulator, units

from tests.atm.test_link import Collector


class RecordingAlgorithm(PortAlgorithm):
    """Test double logging every hook invocation."""

    name = "recorder"

    def __init__(self):
        super().__init__()
        self.calls = []

    def on_attach(self):
        self.calls.append(("attach", None))

    def on_arrival(self, cell):
        self.calls.append(("arrival", cell))

    def on_departure(self, cell):
        self.calls.append(("departure", cell))

    def on_forward_rm(self, rm):
        self.calls.append(("forward_rm", rm))

    def on_backward_rm(self, rm):
        self.calls.append(("backward_rm", rm))


def make_port(sim, **kwargs):
    sink = Collector(sim)
    alg = RecordingAlgorithm()
    port = OutputPort(sim, "p", rate_mbps=150.0, sink=sink,
                      algorithm=alg, **kwargs)
    return port, sink, alg


def test_cells_forwarded_at_line_rate():
    sim = Simulator()
    port, sink, _ = make_port(sim)
    for i in range(3):
        port.receive(Cell(vc="A", seq=i))
    sim.run()
    ct = units.cell_time(150.0)
    assert [t for t, _ in sink.deliveries] == pytest.approx([ct, 2 * ct, 3 * ct])
    assert port.departures == 3
    assert port.queue_len == 0


def test_propagation_delay_added():
    sim = Simulator()
    sink = Collector(sim)
    port = OutputPort(sim, "p", rate_mbps=150.0, sink=sink,
                      propagation=5e-4)
    port.receive(Cell(vc="A"))
    sim.run()
    assert sink.deliveries[0][0] == pytest.approx(
        units.cell_time(150.0) + 5e-4)


def test_buffer_overflow_drops_tail():
    sim = Simulator()
    port, sink, _ = make_port(sim, buffer_cells=2)
    for i in range(5):
        port.receive(Cell(vc="A", seq=i))
    # first cell starts transmitting immediately after enqueue, so the
    # queue holds it until the tx completes: seq 0,1 accepted, rest dropped
    assert port.drops == 3
    assert port.drops_by_vc == {"A": 3}
    sim.run()
    assert [c.seq for _, c in sink.deliveries] == [0, 1]


def test_arrival_hook_sees_dropped_cells_too():
    sim = Simulator()
    port, _, alg = make_port(sim, buffer_cells=1)
    for i in range(3):
        port.receive(Cell(vc="A", seq=i))
    arrivals = [c for kind, c in alg.calls if kind == "arrival"]
    assert len(arrivals) == 3  # offered load, not accepted load
    assert port.drops == 2


def test_forward_rm_hook_fires_only_for_forward_rm():
    sim = Simulator()
    port, _, alg = make_port(sim)
    port.receive(Cell(vc="A"))
    port.receive(RMCell(vc="A", direction=RMDirection.FORWARD))
    port.receive(RMCell(vc="A", direction=RMDirection.BACKWARD))
    kinds = [kind for kind, _ in alg.calls]
    assert kinds.count("forward_rm") == 1
    assert kinds.count("arrival") == 3


def test_departure_hook_and_queue_probe():
    sim = Simulator()
    port, _, alg = make_port(sim)
    port.receive(Cell(vc="A", seq=0))
    port.receive(Cell(vc="A", seq=1))
    sim.run()
    kinds = [kind for kind, _ in alg.calls]
    assert kinds.count("departure") == 2
    # queue grew to 2, drained to 0
    assert port.queue_probe.max() == 2
    assert port.queue_probe.last == 0


def test_algorithm_attach_called_with_port():
    sim = Simulator()
    port, _, alg = make_port(sim)
    assert alg.sim is sim
    assert alg.port is port
    assert alg.calls[0] == ("attach", None)


def test_default_algorithm_is_noop_fifo():
    sim = Simulator()
    sink = Collector(sim)
    port = OutputPort(sim, "p", rate_mbps=150.0, sink=sink)
    assert port.algorithm.name == "fifo"
    assert port.algorithm.state_vars() == {}
    port.receive(Cell(vc="A"))
    sim.run()
    assert len(sink.deliveries) == 1


def test_capacity_cells_per_sec():
    sim = Simulator()
    port, _, _ = make_port(sim)
    assert port.capacity_cells_per_sec == pytest.approx(150e6 / 424)


def test_invalid_buffer_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        OutputPort(sim, "p", rate_mbps=150.0, sink=Collector(sim),
                   buffer_cells=0)
