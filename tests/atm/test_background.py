"""Tests for priority queueing and CBR/VBR background traffic."""

import pytest

from repro.atm import AtmNetwork, BackgroundSink, Cell, CbrSource, OutputPort
from repro.core import PhantomAlgorithm, phantom_equilibrium_rate
from repro.sim import Simulator, units

from tests.atm.test_link import Collector


# ----------------------------------------------------------------------
# priority queueing at ports
# ----------------------------------------------------------------------

def test_priority_zero_served_first():
    sim = Simulator()
    sink = Collector(sim)
    port = OutputPort(sim, "p", rate_mbps=150.0, sink=sink)
    # one ABR cell already transmitting, then queue: abr, cbr
    port.receive(Cell(vc="abr", seq=0))
    port.receive(Cell(vc="abr", seq=1))
    port.receive(Cell(vc="cbr", seq=0, priority=0))
    sim.run()
    order = [(c.vc, c.seq) for _, c in sink.deliveries]
    # seq0 abr was in service; the CBR cell overtakes the queued ABR cell
    assert order == [("abr", 0), ("cbr", 0), ("abr", 1)]


def test_abr_queue_probe_counts_only_abr():
    sim = Simulator()
    port = OutputPort(sim, "p", rate_mbps=150.0, sink=Collector(sim))
    for i in range(3):
        port.receive(Cell(vc="cbr", seq=i, priority=0))
    port.receive(Cell(vc="abr", seq=0))
    assert port.queue_len == 4
    assert port.abr_queue_len == 1


def test_shared_buffer_bound():
    sim = Simulator()
    port = OutputPort(sim, "p", rate_mbps=150.0, sink=Collector(sim),
                      buffer_cells=2)
    port.receive(Cell(vc="cbr", seq=0, priority=0))
    port.receive(Cell(vc="abr", seq=0))
    port.receive(Cell(vc="abr", seq=1))
    assert port.drops == 1


# ----------------------------------------------------------------------
# background sources
# ----------------------------------------------------------------------

def test_cbr_source_paces_at_rate():
    sim = Simulator()
    sink = Collector(sim)
    src = CbrSource(sim, "bg", rate_mbps=50.0)
    src.attach_link(sink)
    src.start()
    sim.run(until=0.01)
    expected = units.mbps_to_cells_per_sec(50.0) * 0.01
    assert len(sink.deliveries) == pytest.approx(expected, abs=2)
    assert all(c.priority == 0 for _, c in sink.deliveries)


def test_cbr_source_start_stop():
    sim = Simulator()
    sink = Collector(sim)
    src = CbrSource(sim, "bg", rate_mbps=50.0, start=0.005, stop=0.01)
    src.attach_link(sink)
    src.start()
    sim.run(until=0.02)
    times = [t for t, _ in sink.deliveries]
    assert min(times) >= 0.005
    assert max(times) <= 0.0101


def test_cbr_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        CbrSource(sim, "bg", rate_mbps=0.0)
    with pytest.raises(ValueError):
        CbrSource(sim, "bg", rate_mbps=1.0, start=1.0, stop=0.5)
    src = CbrSource(sim, "bg", rate_mbps=1.0)
    with pytest.raises(RuntimeError):
        src.start()


def test_vbr_mean_load_roughly_half_of_peak():
    net_sim = Simulator()
    sink = Collector(net_sim)
    from repro.atm import VbrSource
    import random
    src = VbrSource(net_sim, "bg", peak_mbps=100.0, mean_on=0.01,
                    mean_off=0.01, rng=random.Random(1))
    src.attach_link(sink)
    src.start()
    net_sim.run(until=1.0)
    delivered_mbps = units.cells_per_sec_to_mbps(len(sink.deliveries) / 1.0)
    assert delivered_mbps == pytest.approx(50.0, rel=0.3)


# ----------------------------------------------------------------------
# network integration: Phantom re-grants what CBR takes/leaves
# ----------------------------------------------------------------------

def cbr_network(cbr_rate, cbr_start, cbr_stop=None):
    net = AtmNetwork(algorithm_factory=PhantomAlgorithm)
    net.add_switch("S1")
    net.add_switch("S2")
    net.connect("S1", "S2")
    a = net.add_session("A", route=["S1", "S2"])
    b = net.add_session("B", route=["S1", "S2"])
    net.add_cbr("bg", route=["S1", "S2"], rate_mbps=cbr_rate,
                start=cbr_start, stop=cbr_stop)
    return net, a, b


def test_abr_sessions_yield_to_cbr():
    net, a, b = cbr_network(cbr_rate=60.0, cbr_start=0.0)
    net.run(until=0.3)
    # residual capacity is 90: each session gets f*90/(2f+1) ~ 40.9
    expected = 5.0 * 90.0 / 11.0
    assert a.source.acr == pytest.approx(expected, rel=0.15)
    assert b.source.acr == pytest.approx(expected, rel=0.15)
    # the CBR stream itself is untouched
    bg_source, bg_sink = net.background["bg"]
    assert bg_sink.cells_received == pytest.approx(
        bg_source.cells_sent, abs=20)


def test_abr_reclaims_when_cbr_stops():
    net, a, b = cbr_network(cbr_rate=60.0, cbr_start=0.0, cbr_stop=0.15)
    net.run(until=0.4)
    expected = phantom_equilibrium_rate(150.0, 2, 5.0)
    assert a.source.acr == pytest.approx(expected, rel=0.15)


def test_abr_backs_off_when_cbr_joins():
    net, a, b = cbr_network(cbr_rate=60.0, cbr_start=0.15)
    net.run(until=0.14)
    full = phantom_equilibrium_rate(150.0, 2, 5.0)
    assert a.source.acr == pytest.approx(full, rel=0.15)
    net.run(until=0.4)
    reduced = 5.0 * 90.0 / 11.0
    assert a.source.acr == pytest.approx(reduced, rel=0.15)


def test_background_wiring_validation():
    net = AtmNetwork()
    net.add_switch("S1")
    net.add_switch("S2")
    net.connect("S1", "S2")
    net.add_cbr("bg", route=["S1", "S2"], rate_mbps=10.0)
    with pytest.raises(ValueError):
        net.add_cbr("bg", route=["S1", "S2"], rate_mbps=10.0)
    with pytest.raises(ValueError):
        net.add_vbr("bg2", route=[], peak_mbps=10.0, mean_on=0.1,
                    mean_off=0.1)


def test_background_sink_validates_vc():
    sink = BackgroundSink("bg")
    with pytest.raises(ValueError):
        sink.receive(Cell(vc="other"))
