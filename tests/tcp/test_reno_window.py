"""Additional Reno window-management tests: rwnd, flight accounting."""

import pytest

from repro.sim import Simulator
from repro.tcp import RenoParams, TcpRenoSource, TcpSink

from tests.tcp.helpers import Pipe


def loopback(sim, params, delay=0.005):
    src = TcpRenoSource(sim, "a", params=params)
    sink = TcpSink(sim, "a")
    src.attach_link(Pipe(sim, sink, delay=delay))
    sink.attach_reverse(Pipe(sim, src, delay=delay))
    src.start()
    return src, sink


def test_rwnd_caps_flight_size():
    sim = Simulator()
    params = RenoParams(rwnd=8 * 512)
    src, _ = loopback(sim, params)
    max_flight = 0

    def watch():
        nonlocal max_flight
        max_flight = max(max_flight, src.flight_size)
        sim.schedule(0.001, watch)

    sim.schedule(0.0, watch)
    sim.run(until=1.0)
    assert max_flight <= 8 * 512
    assert src.cwnd > 8 * 512  # cwnd grew past the cap; rwnd binds


def test_rwnd_bounds_throughput():
    sim = Simulator()
    # rwnd/RTT = 8*512*8/0.01 = 3.3 Mb/s ceiling
    src, sink = loopback(sim, RenoParams(rwnd=8 * 512), delay=0.005)
    sim.run(until=5.0)
    goodput = sink.bytes_received * 8 / 5.0 / 1e6
    assert goodput == pytest.approx(8 * 512 * 8 / 0.01 / 1e6, rel=0.1)


def test_flight_never_negative_and_una_monotone():
    sim = Simulator()
    src, _ = loopback(sim, RenoParams())
    history = []

    def watch():
        history.append((src.snd_una, src.flight_size))
        sim.schedule(0.002, watch)

    sim.schedule(0.0, watch)
    sim.run(until=0.5)
    unas = [u for u, _ in history]
    assert unas == sorted(unas)
    assert all(f >= 0 for _, f in history)


def test_segments_are_mss_sized():
    sim = Simulator()
    seen = []

    class Tap(Pipe):
        def receive(self, segment):
            seen.append(segment.payload)
            super().receive(segment)

    src = TcpRenoSource(sim, "a", params=RenoParams(mss=256))
    sink = TcpSink(sim, "a")
    src.attach_link(Tap(sim, sink, delay=0.001))
    sink.attach_reverse(Pipe(sim, src, delay=0.001))
    src.start()
    sim.run(until=0.2)
    assert seen
    assert set(seen) == {256}


def test_cwnd_probe_monotone_time():
    sim = Simulator()
    src, _ = loopback(sim, RenoParams())
    sim.run(until=0.5)
    times = src.cwnd_probe.times
    assert times == sorted(times)
