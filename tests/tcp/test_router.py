"""Unit tests for routers, ports and drop-tail."""

import pytest

from repro.sim import Simulator
from repro.tcp import DropTail, PacketPort, Router, RouterError, Segment

from tests.tcp.helpers import Collector


def data(flow="a", seq=0):
    return Segment(flow=flow, seq=seq, payload=512)


def ack(flow="a", n=512):
    return Segment(flow=flow, ack=n)


def test_port_transmits_at_line_rate():
    sim = Simulator()
    sink = Collector(sim)
    port = PacketPort(sim, "p", rate_mbps=10.0, sink=sink)
    port.receive(data(seq=0))
    port.receive(data(seq=512))
    sim.run()
    t1, t2 = (t for t, _ in sink.segments)
    tx = 552 * 8 / 10e6
    assert t1 == pytest.approx(tx)
    assert t2 == pytest.approx(2 * tx)


def test_drop_tail_buffer():
    sim = Simulator()
    sink = Collector(sim)
    port = PacketPort(sim, "p", rate_mbps=10.0, sink=sink,
                      policy=DropTail(2))
    for i in range(5):
        port.receive(data(seq=i * 512))
    assert port.drops == 3
    assert port.drops_by_flow == {"a": 3}
    sim.run()
    assert len(sink.segments) == 2


def test_drop_tail_invalid_buffer():
    with pytest.raises(ValueError):
        DropTail(0)


def test_router_routes_data_forward_acks_backward():
    sim = Simulator()
    fwd, bwd = Collector(sim), Collector(sim)
    router = Router(sim, "R1")
    router.connect_flow("a", forward=fwd, backward=bwd)
    router.receive(data())
    router.receive(ack())
    assert len(fwd.segments) == 1
    assert len(bwd.segments) == 1


def test_router_routes_quench_backward():
    sim = Simulator()
    fwd, bwd = Collector(sim), Collector(sim)
    router = Router(sim, "R1")
    router.connect_flow("a", forward=fwd, backward=bwd)
    router.receive(Segment(flow="a", is_quench=True))
    assert len(fwd.segments) == 0
    assert len(bwd.segments) == 1


def test_router_unknown_flow_raises():
    sim = Simulator()
    router = Router(sim, "R1")
    with pytest.raises(RouterError):
        router.receive(data(flow="zzz"))
    with pytest.raises(RouterError):
        router.backward("zzz")


def test_router_duplicate_flow_rejected():
    sim = Simulator()
    router = Router(sim, "R1")
    router.connect_flow("a", forward=Collector(sim), backward=Collector(sim))
    with pytest.raises(ValueError):
        router.connect_flow("a", forward=Collector(sim),
                            backward=Collector(sim))


def test_port_send_toward_source_uses_router_route():
    sim = Simulator()
    bwd = Collector(sim)
    router = Router(sim, "R1")
    port = PacketPort(sim, "p", rate_mbps=10.0, sink=Collector(sim))
    router.connect_flow("a", forward=port, backward=bwd)
    quench = Segment(flow="a", is_quench=True)
    port.send_toward_source("a", quench)
    assert bwd.segments[0][1] is quench


def test_port_without_router_cannot_quench():
    sim = Simulator()
    port = PacketPort(sim, "p", rate_mbps=10.0, sink=Collector(sim))
    with pytest.raises(RuntimeError):
        port.send_toward_source("a", Segment(flow="a", is_quench=True))


def test_queue_probe_and_idle_tracking():
    sim = Simulator()
    port = PacketPort(sim, "p", rate_mbps=10.0, sink=Collector(sim))
    assert port.idle_since == 0.0
    port.receive(data(seq=0))
    assert port.idle_since is None
    sim.run()
    assert port.idle_since == sim.now
    assert port.queue_probe.last == 0
