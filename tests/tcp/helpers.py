"""Shared test doubles for the TCP test modules."""

from __future__ import annotations


class Collector:
    """Sink recording (time, segment) pairs."""

    def __init__(self, sim):
        self.sim = sim
        self.segments = []

    def receive(self, segment):
        self.segments.append((self.sim.now, segment))


class Pipe:
    """One-way wire with fixed delay and an optional drop predicate."""

    def __init__(self, sim, dest, delay=0.01, drop=None):
        self.sim = sim
        self.dest = dest
        self.delay = delay
        self.drop = drop
        self.dropped = []

    def receive(self, segment):
        if self.drop is not None and self.drop(segment):
            self.dropped.append(segment)
            return
        self.sim.schedule(self.delay, self.dest.receive, segment)
