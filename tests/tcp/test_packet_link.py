"""Unit tests for packet links."""

import pytest

from repro.sim import Simulator
from repro.tcp import PacketLink, Segment

from tests.tcp.helpers import Collector


def test_delivery_time_depends_on_size():
    sim = Simulator()
    sink = Collector(sim)
    link = PacketLink(sim, rate_mbps=10.0, propagation=1e-3, sink=sink)
    link.send(Segment(flow="a", seq=0, payload=512))
    sim.run()
    t, _ = sink.segments[0]
    assert t == pytest.approx(552 * 8 / 10e6 + 1e-3)


def test_acks_transmit_faster_than_data():
    sim = Simulator()
    sink = Collector(sim)
    link = PacketLink(sim, rate_mbps=10.0, propagation=0.0, sink=sink)
    link.send(Segment(flow="a", ack=512))  # 40 bytes
    sim.run()
    assert sink.segments[0][0] == pytest.approx(40 * 8 / 10e6)


def test_serialization_order_preserved():
    sim = Simulator()
    sink = Collector(sim)
    link = PacketLink(sim, rate_mbps=10.0, propagation=0.0, sink=sink)
    for i in range(4):
        link.send(Segment(flow="a", seq=i * 512, payload=512))
    sim.run()
    seqs = [s.seq for _, s in sink.segments]
    assert seqs == [0, 512, 1024, 1536]
    assert link.delivered == 4
    assert link.queued == 0


def test_invalid_args_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        PacketLink(sim, rate_mbps=0.0, propagation=0.0, sink=Collector(sim))
    with pytest.raises(ValueError):
        PacketLink(sim, rate_mbps=1.0, propagation=-1.0, sink=Collector(sim))
