"""Unit tests for the Section-4 router mechanisms."""

import pytest

from repro.core import PhantomParams
from repro.sim import Simulator
from repro.tcp import (PacketPort, Router, RouterPhantom, Segment,
                       SelectiveDiscard, SelectiveEfci, SelectiveQuench,
                       SelectiveRed)

from tests.tcp.helpers import Collector


def data(cr, flow="a", seq=0):
    return Segment(flow=flow, seq=seq, payload=512, cr=cr)


def make_port(sim, policy):
    port = PacketPort(sim, "p", rate_mbps=10.0, sink=Collector(sim),
                      policy=policy)
    return port


PARAMS = PhantomParams(macr_init=1.0, utilization_factor=5.0)
# grant = 5 Mb/s at attach time


def test_router_phantom_meter_tracks_residual():
    sim = Simulator()
    policy = SelectiveDiscard(params=PhantomParams(macr_init=0.0,
                                                   interval=1e-3))
    make_port(sim, policy)
    sim.run(until=0.5)
    # idle port: residual = 10 Mb/s -> MACR converges there
    assert policy.phantom.macr == pytest.approx(10.0, rel=0.05)


def test_selective_discard_drops_only_nonconformant():
    sim = Simulator()
    policy = SelectiveDiscard(params=PARAMS)
    port = make_port(sim, policy)
    port.receive(data(cr=6.0))   # above 5 Mb/s grant
    port.receive(data(cr=4.0))   # conformant
    assert port.drops == 1
    assert policy.selective_drops == 1
    assert port.queue_len == 1


def test_selective_discard_spares_acks():
    sim = Simulator()
    policy = SelectiveDiscard(params=PARAMS)
    port = make_port(sim, policy)
    port.receive(Segment(flow="a", ack=512, cr=99.0))
    assert port.drops == 0


def test_selective_discard_buffer_still_bounds():
    sim = Simulator()
    policy = SelectiveDiscard(buffer_packets=2, params=PARAMS)
    port = make_port(sim, policy)
    for i in range(5):
        port.receive(data(cr=1.0, seq=i * 512))
    assert port.queue_len == 2
    assert port.drops == 3
    assert policy.selective_drops == 0


def test_selective_quench_sends_quench_and_keeps_packet():
    sim = Simulator()
    bwd = Collector(sim)
    policy = SelectiveQuench(params=PARAMS)
    port = make_port(sim, policy)
    router = Router(sim, "R")
    router.connect_flow("a", forward=port, backward=bwd)
    port.receive(data(cr=6.0))
    assert port.queue_len == 1          # packet kept
    assert policy.quenches_sent == 1
    assert bwd.segments[0][1].is_quench


def test_selective_quench_min_gap():
    sim = Simulator()
    bwd = Collector(sim)
    policy = SelectiveQuench(params=PARAMS, min_gap=1.0)
    port = make_port(sim, policy)
    router = Router(sim, "R")
    router.connect_flow("a", forward=port, backward=bwd)
    port.receive(data(cr=6.0, seq=0))
    port.receive(data(cr=6.0, seq=512))
    assert policy.quenches_sent == 1


def test_selective_efci_marks_nonconformant():
    sim = Simulator()
    policy = SelectiveEfci(params=PARAMS)
    port = make_port(sim, policy)
    fast, slow = data(cr=6.0), data(cr=4.0, seq=512)
    port.receive(fast)
    port.receive(slow)
    assert fast.efci is True
    assert slow.efci is False
    assert policy.marked == 1
    assert port.drops == 0


def test_selective_red_candidates_limited():
    sim = Simulator()
    policy = SelectiveRed(min_th=1, max_th=2, wq=1.0, params=PARAMS)
    port = make_port(sim, policy)
    # drive avg above max_th with conformant packets: none dropped early
    for i in range(10):
        port.receive(data(cr=1.0, seq=i * 512))
    conformant_drops = port.drops
    # now a non-conformant packet is a candidate and must be dropped
    port.receive(data(cr=9.0, seq=99 * 512))
    assert conformant_drops == 0
    assert port.drops == 1


def test_policies_constant_space():
    for policy in (SelectiveDiscard(params=PARAMS),
                   SelectiveQuench(params=PARAMS),
                   SelectiveEfci(params=PARAMS)):
        sim = Simulator()
        port = make_port(sim, policy)
        baseline = len(policy.state_vars())
        for i in range(50):
            port.receive(data(cr=0.1, flow=f"f{i}"))
        assert len(policy.state_vars()) == baseline


def test_invalid_args():
    with pytest.raises(ValueError):
        SelectiveDiscard(buffer_packets=0)
    with pytest.raises(ValueError):
        SelectiveQuench(min_gap=-1.0)
