"""Integration tests: Reno flows over simulated router networks.

These reproduce the paper's Section-4 claims in miniature: drop-tail
routers are RTT-biased; the Phantom mechanisms restore fairness.
"""

import pytest

from repro.core import PhantomParams
from repro.tcp import (DropTail, RenoParams, SelectiveDiscard,
                       SelectiveEfci, TcpNetwork)

#: MACR parameters calibrated for router timescales (50 ms interval to
#: match TCP's CR measurement; gentler decrease gain than the ATM loop;
#: no grant floor — see repro.scenarios.tcp.TCP_PHANTOM_PARAMS).
TCP_PHANTOM = PhantomParams(interval=0.05, alpha_inc=0.25, alpha_dec=0.125,
                            grant_floor_fraction=0.0)

RENO = RenoParams(rate_interval=0.02)


def two_flow_net(policy_factory, delay_a=1e-3, delay_b=4e-3):
    net = TcpNetwork(policy_factory=policy_factory, trunk_rate=10.0)
    net.add_router("R1")
    net.add_router("R2")
    net.connect("R1", "R2")
    a = net.add_flow("A", route=["R1", "R2"], access_delay=delay_a,
                     params=RENO)
    b = net.add_flow("B", route=["R1", "R2"], access_delay=delay_b,
                     params=RENO)
    return net, a, b


def goodput(flow, seconds):
    return flow.sink.bytes_received * 8 / seconds / 1e6


def test_single_flow_fills_drop_tail_link():
    net = TcpNetwork(policy_factory=lambda: DropTail(50), trunk_rate=10.0)
    net.add_router("R1")
    net.add_router("R2")
    net.connect("R1", "R2")
    flow = net.add_flow("A", route=["R1", "R2"], params=RENO)
    net.run(until=10.0)
    assert goodput(flow, 10.0) > 8.0  # ~payload share of 10 Mb/s


def test_drop_tail_equal_rtt_is_fair():
    net, a, b = two_flow_net(lambda: DropTail(100), 1e-3, 1e-3)
    net.run(until=20.0)
    ga, gb = goodput(a, 20.0), goodput(b, 20.0)
    assert ga == pytest.approx(gb, rel=0.2)


def test_drop_tail_rtt_bias():
    """Paper Fig. 14-left: the long-RTT flow is starved."""
    net, a, b = two_flow_net(lambda: DropTail(100))
    net.run(until=30.0)
    ga, gb = goodput(a, 30.0), goodput(b, 30.0)
    assert max(ga, gb) / min(ga, gb) > 3.0


def test_selective_discard_removes_rtt_bias():
    """Paper Fig. 14-right: Selective Discard restores fairness."""
    net, a, b = two_flow_net(
        lambda: SelectiveDiscard(buffer_packets=100, params=TCP_PHANTOM,
                                 drop_gap=0.04))
    net.run(until=30.0)
    ga, gb = goodput(a, 30.0), goodput(b, 30.0)
    assert max(ga, gb) / min(ga, gb) < 1.5
    # and the link stays well utilised
    assert ga + gb > 6.0


def test_selective_discard_leaves_phantom_headroom():
    net, a, b = two_flow_net(
        lambda: SelectiveDiscard(buffer_packets=100, params=TCP_PHANTOM,
                                 drop_gap=0.04))
    net.run(until=30.0)
    total = goodput(a, 30.0) + goodput(b, 30.0)
    assert total < 10.0  # never 100%: the phantom's share stays free


def test_selective_efci_no_losses_from_mechanism():
    """EFCI marking controls rates without dropping anything."""
    net, a, b = two_flow_net(
        lambda: SelectiveEfci(buffer_packets=400, params=TCP_PHANTOM))
    net.run(until=20.0)
    trunk = net.trunk("R1", "R2")
    assert trunk.policy.marked > 0
    assert trunk.drops == 0
    assert goodput(a, 20.0) + goodput(b, 20.0) > 5.0


def test_multi_router_path():
    """Three-hop parking lot wiring works end to end."""
    net = TcpNetwork(policy_factory=lambda: DropTail(100), trunk_rate=10.0)
    for name in ("R1", "R2", "R3"):
        net.add_router(name)
    net.connect("R1", "R2")
    net.connect("R2", "R3")
    long = net.add_flow("long", route=["R1", "R2", "R3"], params=RENO)
    short = net.add_flow("short", route=["R2", "R3"], params=RENO)
    net.run(until=10.0)
    assert long.sink.bytes_received > 0
    assert short.sink.bytes_received > 0


def test_duplicate_names_rejected():
    net = TcpNetwork()
    net.add_router("R1")
    with pytest.raises(ValueError):
        net.add_router("R1")
    net.add_router("R2")
    net.connect("R1", "R2")
    with pytest.raises(ValueError):
        net.connect("R1", "R2")
    net.add_flow("a", route=["R1", "R2"])
    with pytest.raises(ValueError):
        net.add_flow("a", route=["R1", "R2"])
    with pytest.raises(ValueError):
        net.add_flow("b", route=[])


def test_goodput_meter():
    net = TcpNetwork(policy_factory=lambda: DropTail(50), trunk_rate=10.0,
                     meter_interval=0.5)
    net.add_router("R1")
    net.add_router("R2")
    net.connect("R1", "R2")
    flow = net.add_flow("A", route=["R1", "R2"], params=RENO)
    net.run(until=10.0)
    tail = flow.goodput_probe.window(5.0, 10.0)
    assert tail.mean() > 7.0
