"""Unit tests for delayed ACKs."""

import pytest

from repro.sim import Simulator
from repro.tcp import RenoParams, Segment, TcpRenoSource, TcpSink

from tests.tcp.helpers import Collector, Pipe


def make_sink(sim, **kwargs):
    sink = TcpSink(sim, "a", **kwargs)
    rev = Collector(sim)
    sink.attach_reverse(rev)
    return sink, rev


def data(seq, efci=False):
    return Segment(flow="a", seq=seq, payload=512, efci=efci)


def test_every_second_segment_acked_immediately():
    sim = Simulator()
    sink, rev = make_sink(sim, delayed_ack=True)
    sink.receive(data(0))
    assert rev.segments == []  # first segment held
    sink.receive(data(512))
    assert len(rev.segments) == 1
    assert rev.segments[0][1].ack == 1024


def test_lone_segment_acked_after_timer():
    sim = Simulator()
    sink, rev = make_sink(sim, delayed_ack=True, delack_time=0.2)
    sink.receive(data(0))
    sim.run(until=0.19)
    assert rev.segments == []
    sim.run(until=0.21)
    assert len(rev.segments) == 1
    assert rev.segments[0][1].ack == 512


def test_out_of_order_acked_immediately():
    sim = Simulator()
    sink, rev = make_sink(sim, delayed_ack=True)
    sink.receive(data(0))      # held
    sink.receive(data(1024))   # gap -> immediate dup-ack
    assert len(rev.segments) == 1
    assert rev.segments[0][1].ack == 512


def test_duplicate_acked_immediately():
    sim = Simulator()
    sink, rev = make_sink(sim, delayed_ack=True)
    sink.receive(data(0))
    sink.receive(data(512))  # flushes
    sink.receive(data(0))    # old duplicate -> immediate ack
    assert len(rev.segments) == 2
    assert rev.segments[-1][1].ack == 1024


def test_efci_accumulates_across_held_segments():
    sim = Simulator()
    sink, rev = make_sink(sim, delayed_ack=True)
    sink.receive(data(0, efci=True))
    sink.receive(data(512, efci=False))
    assert rev.segments[0][1].efci_echo is True


def test_timer_cancelled_by_flush():
    sim = Simulator()
    sink, rev = make_sink(sim, delayed_ack=True, delack_time=0.2)
    sink.receive(data(0))
    sink.receive(data(512))  # immediate flush cancels the timer
    sim.run(until=1.0)
    assert len(rev.segments) == 1  # no spurious timer ack


def test_invalid_delack_time():
    sim = Simulator()
    with pytest.raises(ValueError):
        TcpSink(sim, "a", delack_time=0.0)


def test_delayed_ack_end_to_end_with_reno():
    """Reno still fills the pipe against a delaying receiver."""
    sim = Simulator()
    src = TcpRenoSource(sim, "a", params=RenoParams())
    sink = TcpSink(sim, "a", delayed_ack=True)
    src.attach_link(Pipe(sim, sink, delay=0.005))
    sink.attach_reverse(Pipe(sim, src, delay=0.005))
    src.start()
    sim.run(until=2.0)
    assert sink.bytes_received > 100 * 512
    # roughly half as many ACKs as segments
    assert sink.acks_sent < sink.segments_received * 0.7
