"""Unit tests for the segment model."""

from repro.tcp import DEFAULT_MSS, HEADER_BYTES, Segment


def test_data_segment():
    seg = Segment(flow="a", seq=1024, payload=512)
    assert seg.is_data
    assert seg.size == 512 + HEADER_BYTES == 552
    assert seg.end_seq == 1536
    assert not seg.is_quench


def test_pure_ack():
    ack = Segment(flow="a", ack=2048)
    assert not ack.is_data
    assert ack.size == HEADER_BYTES
    assert ack.ack == 2048


def test_quench_message():
    q = Segment(flow="a", is_quench=True)
    assert q.is_quench
    assert not q.is_data


def test_paper_packet_size():
    assert DEFAULT_MSS == 512


def test_cr_and_efci_fields():
    seg = Segment(flow="a", seq=0, payload=512, cr=3.5)
    assert seg.cr == 3.5
    seg.efci = True
    assert seg.efci
    ack = Segment(flow="a", ack=512, efci_echo=True)
    assert ack.efci_echo
