"""Unit tests for RED."""

import random

import pytest

from repro.sim import Simulator
from repro.tcp import PacketPort, Red, Segment

from tests.tcp.helpers import Collector


def data(seq=0, flow="a"):
    return Segment(flow=flow, seq=seq, payload=512)


def make_port(sim, **red_kwargs):
    red = Red(rng=random.Random(1), **red_kwargs)
    port = PacketPort(sim, "p", rate_mbps=10.0, sink=Collector(sim),
                      policy=red)
    return port, red


def test_no_drops_below_min_threshold():
    sim = Simulator()
    port, red = make_port(sim, min_th=5, max_th=15)
    for i in range(4):
        port.receive(data(seq=i * 512))
    assert port.drops == 0
    assert red.early_drops == 0


def test_average_is_ewma_not_instantaneous():
    sim = Simulator()
    port, red = make_port(sim, min_th=5, max_th=15, wq=0.002)
    for i in range(20):
        port.receive(data(seq=i * 512))
    # instantaneous queue ~20, but the slow EWMA is far below min_th
    assert port.queue_len >= 19
    assert red.avg < 1.0


def test_sustained_congestion_forces_drops():
    sim = Simulator()
    port, red = make_port(sim, min_th=5, max_th=15, wq=0.2, max_p=0.1)
    for i in range(300):
        port.receive(data(seq=i * 512))
    assert red.early_drops + red.forced_drops > 0
    assert port.drops > 0


def test_above_max_threshold_drops_everything():
    sim = Simulator()
    port, red = make_port(sim, min_th=1, max_th=3, wq=1.0)
    for i in range(10):
        port.receive(data(seq=i * 512))
    # with wq=1 avg == queue: once queue >= 3 every arrival is dropped
    assert port.queue_len == 3
    assert red.forced_drops == 7


def test_physical_buffer_respected():
    sim = Simulator()
    port, red = make_port(sim, min_th=50, max_th=100, buffer_packets=5)
    for i in range(10):
        port.receive(data(seq=i * 512))
    assert port.queue_len == 5
    assert red.forced_drops == 5


def test_acks_never_dropped_early():
    sim = Simulator()
    port, red = make_port(sim, min_th=1, max_th=2, wq=1.0)
    for i in range(10):
        port.receive(data(seq=i * 512))
    before = port.drops
    port.receive(Segment(flow="a", ack=512))
    assert port.drops == before  # pure ACK not a RED candidate


def test_idle_period_decays_average():
    sim = Simulator()
    port, red = make_port(sim, min_th=5, max_th=15, wq=0.5)
    for i in range(20):
        port.receive(data(seq=i * 512))
    sim.run()  # drain completely; port goes idle
    peak = red.avg
    sim.schedule(0.05, port.receive, data(seq=999 * 512))
    sim.run()
    assert red.avg < peak / 2


def test_state_constant_space():
    red = Red()
    assert set(red.state_vars()) == {"avg", "count"}


@pytest.mark.parametrize("kwargs", [
    {"min_th": 0}, {"min_th": 10, "max_th": 5}, {"max_p": 0.0},
    {"max_p": 1.5}, {"wq": 0.0}, {"buffer_packets": 0},
])
def test_invalid_params(kwargs):
    with pytest.raises(ValueError):
        Red(**kwargs)
