"""Unit tests for the TCP Reno sender (Stevens §21 behaviour)."""

import pytest

from repro.sim import Simulator
from repro.tcp import RenoParams, Segment, TcpRenoSource, TcpSink

from tests.tcp.helpers import Pipe


def loopback(sim, params=None, delay=0.005, drop=None):
    """Source and sink joined by two fixed-delay pipes (RTT = 2*delay)."""
    src = TcpRenoSource(sim, "a", params=params or RenoParams())
    sink = TcpSink(sim, "a")
    forward = Pipe(sim, sink, delay=delay, drop=drop)
    backward = Pipe(sim, src, delay=delay)
    src.attach_link(forward)
    sink.attach_reverse(backward)
    src.start()
    return src, sink, forward


def test_starts_with_one_segment():
    sim = Simulator()
    src, sink, _ = loopback(sim)
    sim.run(until=0.001)
    assert src.segments_sent == 1
    assert src.cwnd == 512


def test_slow_start_doubles_per_rtt():
    sim = Simulator()
    src, sink, _ = loopback(sim, delay=0.005)  # RTT 10 ms
    # after k RTTs cwnd ~ 2^k segments
    sim.run(until=0.045)  # ~4 RTTs delivered
    assert src.cwnd >= 8 * 512
    assert sink.bytes_received >= (1 + 2 + 4 + 8) * 512


def test_congestion_avoidance_linear_growth():
    sim = Simulator()
    params = RenoParams(initial_ssthresh=2 * 512)
    src, _, _ = loopback(sim, params=params, delay=0.005)
    sim.run(until=0.105)  # ~10 RTTs
    # slow start to 2 segments, then ~1 segment per RTT
    cwnd_segments = src.cwnd / 512
    assert 8 <= cwnd_segments <= 14


def test_fast_retransmit_recovers_single_loss():
    sim = Simulator()
    lost = []

    def drop_once(segment):
        if segment.seq == 10 * 512 and not lost:
            lost.append(segment.seq)
            return True
        return False

    src, sink, _ = loopback(sim, delay=0.005, drop=drop_once)
    sim.run(until=0.3)
    assert lost == [10 * 512]
    assert src.fast_retransmits == 1
    assert src.timeouts == 0
    assert src.retransmits == 1
    # stream fully repaired and progressing past the hole
    assert sink.bytes_received > 20 * 512


def test_fast_retransmit_halves_window():
    sim = Simulator()
    state = {}

    def drop_once(segment):
        if segment.seq == 16 * 512 and "dropped" not in state:
            state["dropped"] = True
            return True
        return False

    src, _, _ = loopback(sim, delay=0.005, drop=drop_once)
    sim.run(until=0.3)
    # after recovery cwnd == ssthresh == ~half the pre-loss flight
    assert src.ssthresh < 65535
    assert src.cwnd >= src.ssthresh
    assert src.cwnd < 64 * 512


def test_timeout_on_total_blackout():
    sim = Simulator()
    blackout = {"active": True}

    def drop_during_blackout(segment):
        return blackout["active"]

    params = RenoParams(rto_initial=0.1, rto_min=0.05)
    src, sink, _ = loopback(sim, params=params, delay=0.005,
                            drop=drop_during_blackout)
    sim.run(until=0.3)
    assert src.timeouts >= 1
    assert src.cwnd == 512  # collapsed to one segment
    blackout["active"] = False
    sim.run(until=1.0)
    assert sink.bytes_received > 0  # recovered after the blackout


def test_rto_exponential_backoff():
    sim = Simulator()
    params = RenoParams(rto_initial=0.1, rto_min=0.05, rto_max=10.0)
    src, _, _ = loopback(sim, params=params, delay=0.005,
                         drop=lambda s: True)
    sim.run(until=2.0)
    assert src.timeouts >= 3
    assert src.rto >= 0.4  # doubled at least twice


def test_rtt_estimation_converges():
    sim = Simulator()
    src, _, _ = loopback(sim, delay=0.005)
    sim.run(until=0.5)
    assert src.srtt == pytest.approx(0.01, rel=0.5)
    assert src.rto == pytest.approx(src.params.rto_min, rel=0.01)


def test_source_quench_halves_window():
    sim = Simulator()
    src, _, _ = loopback(sim, delay=0.005)
    sim.run(until=0.1)
    before = src.cwnd
    src.receive(Segment(flow="a", is_quench=True))
    assert src.quenches_received == 1
    assert src.cwnd < before


def test_quench_guard_suppresses_bursts():
    sim = Simulator()
    src, _, _ = loopback(sim, delay=0.005)
    sim.run(until=0.1)
    src.receive(Segment(flow="a", is_quench=True))
    after_first = src.cwnd
    src.receive(Segment(flow="a", is_quench=True))  # same instant
    assert src.cwnd == after_first
    assert src.quenches_received == 2


def test_efci_echo_freezes_growth():
    sim = Simulator()
    src = TcpRenoSource(sim, "a")
    sink = TcpSink(sim, "a")

    class MarkingPipe(Pipe):
        def receive(self, segment):
            if segment.is_data:
                segment.efci = True
            super().receive(segment)

    src.attach_link(MarkingPipe(sim, sink, delay=0.005))
    sink.attach_reverse(Pipe(sim, src, delay=0.005))
    src.start()
    sim.run(until=0.2)
    assert src.cwnd == 512  # every ACK carried the echo: no growth


def test_efci_ignored_when_disabled():
    sim = Simulator()
    params = RenoParams(respect_efci=False)
    src = TcpRenoSource(sim, "a", params=params)
    sink = TcpSink(sim, "a")

    class MarkingPipe(Pipe):
        def receive(self, segment):
            if segment.is_data:
                segment.efci = True
            super().receive(segment)

    src.attach_link(MarkingPipe(sim, sink, delay=0.005))
    sink.attach_reverse(Pipe(sim, src, delay=0.005))
    src.start()
    sim.run(until=0.2)
    assert src.cwnd > 512


def test_cr_stamp_tracks_goodput():
    sim = Simulator()
    params = RenoParams(rate_interval=0.05, initial_ssthresh=8 * 512)
    src, sink, _ = loopback(sim, params=params, delay=0.005)
    sim.run(until=0.95)
    before = sink.bytes_received
    sim.run(until=1.0)
    # CR should approximate the acked-payload rate over the last interval
    assert src.current_rate > 0
    recent_goodput = (sink.bytes_received - before) * 8 / 0.05 / 1e6
    assert src.current_rate == pytest.approx(recent_goodput, rel=0.5)


def test_data_segments_carry_cr():
    sim = Simulator()
    collected = []

    class Tap(Pipe):
        def receive(self, segment):
            collected.append(segment.cr)
            super().receive(segment)

    src = TcpRenoSource(sim, "a", params=RenoParams(rate_interval=0.02))
    sink = TcpSink(sim, "a")
    src.attach_link(Tap(sim, sink, delay=0.005))
    sink.attach_reverse(Pipe(sim, src, delay=0.005))
    src.start()
    sim.run(until=0.5)
    assert collected[0] == 0.0       # nothing acked yet
    assert max(collected) > 0.0      # later stamps carry the measured rate


def test_start_time_honoured():
    sim = Simulator()
    src = TcpRenoSource(sim, "a", start_time=1.0)
    sink = TcpSink(sim, "a")
    src.attach_link(Pipe(sim, sink, delay=0.005))
    sink.attach_reverse(Pipe(sim, src, delay=0.005))
    src.start()
    sim.run(until=0.9)
    assert src.segments_sent == 0
    sim.run(until=1.1)
    assert src.segments_sent >= 1


def test_lifecycle_errors():
    sim = Simulator()
    src = TcpRenoSource(sim, "a")
    with pytest.raises(RuntimeError):
        src.start()
    src.attach_link(Pipe(sim, TcpSink(sim, "a"), delay=0.001))
    src.start()
    with pytest.raises(RuntimeError):
        src.start()
    with pytest.raises(ValueError):
        src.receive(Segment(flow="a", seq=0, payload=512))


@pytest.mark.parametrize("kwargs", [
    {"mss": 0}, {"initial_cwnd": 0}, {"dupack_threshold": 0},
    {"rto_min": 0.0}, {"rto_min": 5.0, "rto_max": 1.0},
    {"rate_interval": 0.0},
])
def test_invalid_params(kwargs):
    with pytest.raises(ValueError):
        RenoParams(**kwargs)
