"""Unit tests for the TCP receiver."""

import pytest

from repro.sim import Simulator
from repro.tcp import Segment, TcpSink

from tests.tcp.helpers import Collector


def make_sink():
    sim = Simulator()
    sink = TcpSink(sim, "a")
    rev = Collector(sim)
    sink.attach_reverse(rev)
    return sink, rev


def data(seq, payload=512, efci=False):
    return Segment(flow="a", seq=seq, payload=payload, efci=efci)


def test_in_order_delivery_acks_cumulative():
    sink, rev = make_sink()
    sink.receive(data(0))
    sink.receive(data(512))
    acks = [s.ack for _, s in rev.segments]
    assert acks == [512, 1024]
    assert sink.bytes_received == 1024


def test_gap_generates_duplicate_acks():
    sink, rev = make_sink()
    sink.receive(data(0))
    sink.receive(data(1024))  # 512 missing
    sink.receive(data(1536))
    acks = [s.ack for _, s in rev.segments]
    assert acks == [512, 512, 512]


def test_retransmission_fills_gap_and_jumps_ack():
    sink, rev = make_sink()
    sink.receive(data(0))
    sink.receive(data(1024))
    sink.receive(data(1536))
    sink.receive(data(512))  # the retransmission
    assert rev.segments[-1][1].ack == 2048
    assert sink.bytes_received == 2048


def test_old_duplicate_counted_and_reacked():
    sink, rev = make_sink()
    sink.receive(data(0))
    sink.receive(data(0))
    assert sink.duplicates == 1
    assert [s.ack for _, s in rev.segments] == [512, 512]


def test_efci_echoed_per_segment():
    sink, rev = make_sink()
    sink.receive(data(0, efci=True))
    sink.receive(data(512, efci=False))
    echoes = [s.efci_echo for _, s in rev.segments]
    assert echoes == [True, False]


def test_sink_validates_input():
    sink, _ = make_sink()
    with pytest.raises(ValueError):
        sink.receive(Segment(flow="b", seq=0, payload=512))
    with pytest.raises(ValueError):
        sink.receive(Segment(flow="a", ack=512))


def test_sink_requires_reverse_link():
    sim = Simulator()
    sink = TcpSink(sim, "a")
    with pytest.raises(RuntimeError):
        sink.receive(data(0))
