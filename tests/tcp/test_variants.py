"""Unit tests for TCP Tahoe and Vegas senders."""

import pytest

from repro.sim import Simulator
from repro.tcp import (RenoParams, TcpSink, TcpTahoeSource, TcpVegasSource,
                       VegasParams)

from tests.tcp.helpers import Pipe


def loopback(sim, source_class, params=None, delay=0.005, drop=None):
    src = source_class(sim, "a", params=params or RenoParams())
    sink = TcpSink(sim, "a")
    src.attach_link(Pipe(sim, sink, delay=delay, drop=drop))
    sink.attach_reverse(Pipe(sim, src, delay=delay))
    src.start()
    return src, sink


# ----------------------------------------------------------------------
# Tahoe
# ----------------------------------------------------------------------

def test_tahoe_fast_retransmit_collapses_to_one_segment():
    sim = Simulator()
    state = {}

    def drop_once(segment):
        if segment.seq == 10 * 512 and "d" not in state:
            state["d"] = True
            return True
        return False

    src, sink = loopback(sim, TcpTahoeSource, drop=drop_once)
    sim.run(until=0.5)
    assert src.fast_retransmits == 1
    # Tahoe restarts from 1 segment (Reno would sit at ssthresh+3mss):
    # the cwnd trace must collapse to exactly one MSS after the loss
    post_loss = [v for t, v in src.cwnd_probe if t > 0.02]
    assert min(post_loss) == 512
    assert sink.bytes_received > 20 * 512  # recovered and progressing


def test_tahoe_slower_than_reno_after_loss():
    from repro.tcp import TcpRenoSource

    def run(source_class):
        sim = Simulator()
        state = {}

        def drop_once(segment):
            if segment.seq == 10 * 512 and "d" not in state:
                state["d"] = True
                return True
            return False

        src, sink = loopback(sim, source_class, drop=drop_once)
        sim.run(until=0.4)
        return sink.bytes_received

    assert run(TcpTahoeSource) <= run(TcpRenoSource)


# ----------------------------------------------------------------------
# Vegas
# ----------------------------------------------------------------------

def test_vegas_params_validation():
    with pytest.raises(ValueError):
        VegasParams(vegas_alpha=0.0)
    with pytest.raises(ValueError):
        VegasParams(vegas_alpha=5.0, vegas_beta=2.0)
    with pytest.raises(ValueError):
        VegasParams(vegas_gamma=0.0)


def test_vegas_accepts_base_reno_params():
    sim = Simulator()
    src = TcpVegasSource(sim, "a", params=RenoParams(mss=256))
    assert isinstance(src.params, VegasParams)
    assert src.params.mss == 256
    assert src.params.vegas_alpha == 2.0


def test_vegas_tracks_base_rtt():
    sim = Simulator()
    src, _ = loopback(sim, TcpVegasSource, delay=0.005)
    sim.run(until=0.5)
    assert src.base_rtt == pytest.approx(0.01, rel=0.2)


def test_vegas_holds_window_inside_band():
    """On an uncongested path the backlog stays below alpha and the
    window grows; Vegas never grows past the point where diff > beta."""
    sim = Simulator()
    src, sink = loopback(sim, TcpVegasSource, delay=0.005)
    sim.run(until=2.0)
    diff = src.backlog_segments()
    assert diff is not None
    # with fixed-delay pipes there is no queueing: RTT == BaseRTT, so
    # diff ~ 0 and Vegas keeps increasing linearly (no loss to stop it)
    assert diff < src.params.vegas_beta + 1
    assert sink.bytes_received > 0


def test_vegas_backs_off_when_rtt_inflates():
    """Growing RTT (standing queue) must push Vegas' window down."""
    sim = Simulator()

    class InflatingPipe(Pipe):
        def receive(self, segment):
            # delay grows with time: emulates a filling queue
            self.delay = 0.005 + sim.now * 0.01
            super().receive(segment)

    src = TcpVegasSource(sim, "a")
    sink = TcpSink(sim, "a")
    src.attach_link(InflatingPipe(sim, sink, delay=0.005))
    sink.attach_reverse(Pipe(sim, src, delay=0.005))
    src.start()
    sim.run(until=1.0)
    peak = max(src.cwnd_probe.values)
    assert src.cwnd < peak  # it reduced from its peak
    # Vegas steers the backlog back toward the band from above
    assert src.backlog_segments() > src.params.vegas_alpha


def test_vegas_keeps_reno_loss_recovery():
    sim = Simulator()
    state = {}

    def drop_once(segment):
        if segment.seq == 8 * 512 and "d" not in state:
            state["d"] = True
            return True
        return False

    src, sink = loopback(sim, TcpVegasSource, drop=drop_once)
    sim.run(until=1.0)
    assert src.fast_retransmits + src.timeouts >= 1
    assert sink.bytes_received > 10 * 512
