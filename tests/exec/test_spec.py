"""TaskSpec: validation, canonical form, wire round-trip, seeds."""

import pytest

from repro.exec import TaskSpec, derive_seed


def test_round_trips_through_wire_form():
    spec = TaskSpec(task_id="E01", scenario="atm.staggered",
                    params={"duration": 0.25, "n_sessions": 3},
                    seed=1234, probes=("s0.acr",))
    again = TaskSpec.from_dict(spec.to_dict())
    assert again == spec


def test_canonical_excludes_the_task_id():
    # same work, different label: must share a cache entry
    a = TaskSpec(task_id="a", scenario="atm.staggered",
                 params={"duration": 0.1})
    b = TaskSpec(task_id="b", scenario="atm.staggered",
                 params={"duration": 0.1})
    assert a.canonical() == b.canonical()


def test_canonical_distinguishes_params_seed_and_probes():
    base = TaskSpec(task_id="t", scenario="atm.staggered",
                    params={"duration": 0.1})
    for other in (
            TaskSpec(task_id="t", scenario="atm.staggered",
                     params={"duration": 0.2}),
            TaskSpec(task_id="t", scenario="atm.staggered",
                     params={"duration": 0.1}, seed=1),
            TaskSpec(task_id="t", scenario="atm.staggered",
                     params={"duration": 0.1}, probes=("s0.acr",)),
            TaskSpec(task_id="t", scenario="atm.onoff",
                     params={"duration": 0.1})):
        assert other.canonical() != base.canonical()


def test_canonical_is_key_order_independent():
    a = TaskSpec(task_id="t", scenario="s", params={"a": 1, "b": 2})
    b = TaskSpec(task_id="t", scenario="s", params={"b": 2, "a": 1})
    assert a.canonical() == b.canonical()


def test_rejects_empty_ids_and_unserialisable_params():
    with pytest.raises(ValueError):
        TaskSpec(task_id="", scenario="atm.staggered")
    with pytest.raises(ValueError):
        TaskSpec(task_id="t", scenario="")
    with pytest.raises(TypeError):
        TaskSpec(task_id="t", scenario="s", params={"fn": lambda: None})


def test_derive_seed_is_stable_and_task_dependent():
    assert derive_seed(0, "E02") == derive_seed(0, "E02")
    assert derive_seed(0, "E02") != derive_seed(1, "E02")
    assert derive_seed(0, "E02") != derive_seed(0, "E03")
    # matches the RngStreams derivation scheme: sha256 of "seed:name"
    import hashlib
    expected = int.from_bytes(
        hashlib.sha256(b"7:E02").digest()[:8], "big")
    assert derive_seed(7, "E02") == expected


# ----------------------------------------------------------------------
# inline configs (generated specs)
# ----------------------------------------------------------------------
def _config():
    return {"switches": ["S1", "S2"],
            "trunks": [{"a": "S1", "b": "S2"}],
            "sessions": [{"vc": "s0", "route": ["S1", "S2"]}],
            "duration": 0.1}


def test_config_round_trips_through_wire_form():
    spec = TaskSpec(task_id="fz", scenario="fuzz.generic", seed=7,
                    probes=("s0.acr",), config=_config())
    again = TaskSpec.from_dict(spec.to_dict())
    assert again == spec
    assert again.config == _config()


def test_config_canonical_is_key_order_independent():
    a = TaskSpec(task_id="t", scenario="fuzz.generic",
                 config={"duration": 0.1, "switches": ["S1"]})
    b = TaskSpec(task_id="t", scenario="fuzz.generic",
                 config={"switches": ["S1"], "duration": 0.1})
    assert a.canonical() == b.canonical()


def test_config_feeds_the_canonical_form():
    a = TaskSpec(task_id="t", scenario="fuzz.generic", config=_config())
    other = dict(_config(), duration=0.2)
    b = TaskSpec(task_id="t", scenario="fuzz.generic", config=other)
    assert a.canonical() != b.canonical()


def test_configless_specs_keep_their_historical_identity():
    # adding the config field must not shift existing cache keys
    spec = TaskSpec(task_id="t", scenario="atm.staggered",
                    params={"duration": 0.1})
    assert '"config"' not in spec.canonical()


def test_config_spec_never_collides_with_a_registry_spec():
    named = TaskSpec(task_id="t", scenario="fuzz.generic",
                     params={"config": _config()})
    inline = TaskSpec(task_id="t", scenario="fuzz.generic",
                      config=_config())
    assert named.canonical() != inline.canonical()


def test_effective_params_merges_the_config():
    spec = TaskSpec(task_id="t", scenario="fuzz.generic",
                    config=_config())
    assert spec.effective_params()["config"] == _config()


def test_config_must_be_a_jsonable_mapping():
    with pytest.raises(TypeError):
        TaskSpec(task_id="t", scenario="s", config=[1, 2])
    with pytest.raises(TypeError):
        TaskSpec(task_id="t", scenario="s",
                 config={"fn": lambda: None})
