"""`repro suite` / `repro sweep` end to end (tiny filtered suites)."""

import json

import pytest

from repro.cli import main

# E01 and E19 at the minimum scale: three short ATM tasks, enough to
# exercise fan-out, reporting, and the cache without a slow test
FAST = ["--scale", "0.05", "--experiments", "E01,E19", "-j", "2"]


def run_suite(tmp_path, *extra, label="a"):
    out = tmp_path / f"report_{label}.json"
    manifest = tmp_path / f"manifest_{label}.json"
    code = main(["suite", *FAST,
                 "--cache-dir", str(tmp_path / "cache"),
                 "--output", str(out),
                 "--manifest", str(manifest), *extra])
    report = json.loads(out.read_text()) if out.exists() else None
    mani = json.loads(manifest.read_text()) if manifest.exists() else None
    return code, report, mani


def test_suite_runs_then_serves_from_cache(tmp_path, capsys):
    code, report, mani = run_suite(tmp_path)
    assert code == 0
    assert report["schema"] == "repro.exec.report"
    tasks = {t["task_id"]: t for t in report["tasks"]}
    assert set(tasks) == {"E01", "E19-f2", "E19-f5", "E19-f10",
                          "E19-f20"}
    assert all(t["status"] == "ok" and not t["cached"]
               for t in tasks.values())
    assert {t["task_id"] for t in mani["tasks"]} == set(tasks)
    first_out = capsys.readouterr().out
    assert "from cache" in first_out

    # a first pass cannot satisfy --assert-cached...
    code2, _, _ = run_suite(tmp_path / "cold", "--assert-cached",
                            label="cold")
    assert code2 == 1
    assert "--assert-cached" in capsys.readouterr().out

    # ...but the warm second pass must be fully cache-served
    code3, report3, _ = run_suite(tmp_path, "--assert-cached", label="b")
    assert code3 == 0
    tasks3 = {t["task_id"]: t for t in report3["tasks"]}
    assert all(t["cached"] for t in tasks3.values())
    # and bit-identical to the first run's results
    for task_id, t in tasks.items():
        assert tasks3[task_id]["fingerprint"] == t["fingerprint"]


def test_suite_no_cache_resimulates(tmp_path):
    code, report, _ = run_suite(tmp_path, "--no-cache")
    assert code == 0
    code2, report2, _ = run_suite(tmp_path, "--no-cache", label="b")
    assert code2 == 0
    assert all(not t["cached"] for t in report2["tasks"])
    assert not (tmp_path / "cache").exists()


def test_suite_record_bench_merges(tmp_path):
    bench = tmp_path / "bench.json"
    bench.write_text(json.dumps({"benchmarks": []}))
    code, _, _ = run_suite(tmp_path, "--record-bench", str(bench))
    assert code == 0
    merged = json.loads(bench.read_text())
    assert merged["benchmarks"] == []  # existing content preserved
    entry = merged["suite"]["j2"]
    assert entry["tasks"] == 5 and entry["scale"] == 0.05


def test_suite_health_aggregates_and_prints_table(tmp_path, capsys):
    code, _report, mani = run_suite(tmp_path, "--health")
    assert code == 0
    out = capsys.readouterr().out
    assert "health: pass across 5 run(s)" in out
    assert "conservation" in out and "queue_bound" in out
    health = mani["health"]
    assert health["schema"] == "repro.obs.health.suite"
    assert health["verdicts"]["pass"] == 5
    assert health["verdicts"]["violated"] == 0
    assert health["checks"]["conservation"]["pass"] == 5
    assert all(t["health"] == "pass" for t in mani["tasks"])


def test_suite_rejects_unknown_experiment(tmp_path, capsys):
    with pytest.raises(SystemExit):
        main(["suite", "--experiments", "E99",
              "--cache-dir", str(tmp_path)])


def test_sweep_cli(tmp_path, capsys):
    out = tmp_path / "sweep.json"
    code = main(["sweep", "--scenario", "atm.staggered",
                 "--param", "algorithm_params.utilization_factor="
                            "0.9,0.95",
                 "--set", "duration=0.05", "--set", "n_sessions=2",
                 "--probe", "s0.acr",
                 "-j", "1", "--cache-dir", str(tmp_path / "cache"),
                 "--output", str(out)])
    assert code == 0
    report = json.loads(out.read_text())
    assert len(report["tasks"]) == 2
    printed = capsys.readouterr().out
    assert "utilization" in printed and "jain" in printed


def test_sweep_rejects_malformed_axes(tmp_path):
    with pytest.raises(SystemExit):
        main(["sweep", "--scenario", "atm.staggered",
              "--param", "not-a-pair",
              "--cache-dir", str(tmp_path)])
    with pytest.raises(SystemExit):
        main(["sweep", "--scenario", "atm.staggered",
              "--cache-dir", str(tmp_path)])  # no axes at all
