"""The pool: serial/parallel parity, failure handling, retries, cache."""

import pytest

from repro.exec import (ResultCache, SourceIndex, TaskSpec, default_jobs,
                        run_tasks)
from repro.exec.pool import MAX_DEFAULT_JOBS
from repro.exec.registry import _SCENARIOS, register_scenario

SMALL_ATM = dict(scenario="atm.staggered",
                 params={"n_sessions": 2, "duration": 0.05,
                         "stagger": 0.01})


def specs(n: int = 3) -> list[TaskSpec]:
    # durations differ so each task is distinct work (own fingerprint)
    out = []
    for i in range(n):
        params = dict(SMALL_ATM["params"], duration=0.05 + 0.01 * i)
        out.append(TaskSpec(task_id=f"T{i}", scenario="atm.staggered",
                            params=params, probes=("s0.acr",)))
    return out


# entry points for failure-mode tests; module-level so the registry
# accepts them and forked workers can resolve them
def always_raises(duration: float = 0.1):
    raise RuntimeError("scripted failure")


def spins_forever(duration: float = 0.1):
    while True:
        pass


@pytest.fixture
def scratch_registry():
    before = dict(_SCENARIOS)
    yield
    _SCENARIOS.clear()
    _SCENARIOS.update(before)


# ----------------------------------------------------------------------
# parity and ordering
# ----------------------------------------------------------------------
def test_parallel_is_bit_identical_to_serial():
    serial = run_tasks(specs(), jobs=1)
    parallel = run_tasks(specs(), jobs=4)
    assert [r.spec.task_id for r in parallel] == ["T0", "T1", "T2"]
    for s, p in zip(serial, parallel):
        assert s.ok and p.ok
        assert p.payload["probe_digests"] == s.payload["probe_digests"]
        assert p.payload["metrics"] == s.payload["metrics"]
        assert p.payload["counters"] == s.payload["counters"]
        assert p.payload["series"] == s.payload["series"]
        assert p.payload["now"] == s.payload["now"]


def test_single_task_and_metric_accessors():
    (res,) = run_tasks(specs(1), jobs=4)  # degrades to in-process
    assert res.ok and res.attempts == 1 and not res.cached
    assert res.metric("jain") == res.payload["metrics"]["jain"]
    probe = res.probe("s0.acr")
    assert len(probe.times) == len(probe.values) > 0
    with pytest.raises(KeyError):
        res.probe("s1.acr")  # not in the requested probe set


def test_duplicate_task_ids_are_rejected():
    pair = [specs(1)[0], specs(1)[0]]
    with pytest.raises(ValueError, match="duplicate task_id"):
        run_tasks(pair, jobs=1)


def test_jobs_and_retries_are_validated():
    with pytest.raises(ValueError, match="jobs"):
        run_tasks(specs(1), jobs=0)
    with pytest.raises(ValueError, match="retries"):
        run_tasks(specs(1), jobs=1, retries=-1)


# ----------------------------------------------------------------------
# failures stay data, retries are accounted
# ----------------------------------------------------------------------
def test_error_entries_consume_the_retry_budget(scratch_registry):
    register_scenario("atm.raises", always_raises, kind="atm")
    bad = TaskSpec(task_id="bad", scenario="atm.raises")
    for jobs in (1, 2):
        (res,) = run_tasks([bad], jobs=jobs, retries=2)
        assert res.status == "error" and not res.ok
        assert res.attempts == 3  # 1 try + 2 retries
        assert "scripted failure" in res.error
        with pytest.raises(ValueError, match="no metrics"):
            res.metric("jain")


def test_unknown_scenario_is_an_error_result():
    (res,) = run_tasks([TaskSpec(task_id="x", scenario="atm.nope")],
                       jobs=1, retries=0)
    assert res.status == "error"
    assert "unknown scenario" in res.error


def test_timeouts_are_reported_not_raised(scratch_registry):
    register_scenario("atm.spin", spins_forever, kind="atm")
    spin = TaskSpec(task_id="spin", scenario="atm.spin")
    (res,) = run_tasks([spin], jobs=1, timeout=0.2, retries=0)
    assert res.status == "timeout"
    assert "0.2s" in res.error


def test_failures_do_not_poison_later_tasks(scratch_registry):
    register_scenario("atm.raises", always_raises, kind="atm")
    mixed = [specs(1)[0],
             TaskSpec(task_id="bad", scenario="atm.raises"),
             TaskSpec(task_id="T9", probes=("s0.acr",), **SMALL_ATM)]
    results = run_tasks(mixed, jobs=2, retries=0)
    assert [r.status for r in results] == ["ok", "error", "ok"]


# ----------------------------------------------------------------------
# the cache through run_tasks
# ----------------------------------------------------------------------
def test_second_run_is_served_from_cache(tmp_path):
    index = SourceIndex()
    cache = ResultCache(tmp_path)
    first = run_tasks(specs(), jobs=1, cache=cache, index=index)
    assert all(r.ok and not r.cached for r in first)
    second = run_tasks(specs(), jobs=1, cache=cache, index=index)
    assert all(r.cached for r in second)
    for f, s in zip(first, second):
        assert s.payload == f.payload  # bitwise: floats round-trip
        assert s.fingerprint == f.fingerprint


def test_failed_tasks_are_never_cached(tmp_path, scratch_registry):
    register_scenario("atm.raises", always_raises, kind="atm")
    cache = ResultCache(tmp_path)
    bad = TaskSpec(task_id="bad", scenario="atm.raises")
    run_tasks([bad], jobs=1, cache=cache, retries=0)
    (again,) = run_tasks([bad], jobs=1, cache=cache, retries=0)
    assert again.status == "error" and not again.cached


# ----------------------------------------------------------------------
# job-count selection
# ----------------------------------------------------------------------
def test_default_jobs_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_EXEC_JOBS", "3")
    assert default_jobs() == 3
    monkeypatch.setenv("REPRO_EXEC_JOBS", "0")
    assert default_jobs() == 1  # clamped to at least one worker
    monkeypatch.delenv("REPRO_EXEC_JOBS")
    assert 1 <= default_jobs() <= MAX_DEFAULT_JOBS
