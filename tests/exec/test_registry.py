"""Scenario registry: importability enforcement and builtin entries."""

import pytest

from repro.exec import all_scenarios, get_scenario
from repro.exec.registry import _SCENARIOS, register_scenario


def module_level_entry(duration: float = 0.1):
    return duration


def module_level_param_deps(params):
    return ()


@pytest.fixture
def scratch_registry():
    """Let a test register throwaway entries without leaking them."""
    before = dict(_SCENARIOS)
    yield
    _SCENARIOS.clear()
    _SCENARIOS.update(before)


def test_builtin_entries_are_registered():
    names = set(all_scenarios())
    assert {"atm.staggered", "atm.onoff", "atm.rtt", "atm.parking",
            "atm.transient", "atm.background", "atm.weighted",
            "tcp.rtt", "tcp.parking", "tcp.many", "tcp.vegas",
            "tcp.mixed", "tcp.twoway", "fluid.staggered", "fluid.onoff",
            "fluid.parking", "fluid.many", "fluid.hybrid_e01",
            "fuzz.generic"} <= names


def test_every_builtin_entry_is_importable_and_kinded():
    import importlib
    for name, entry in all_scenarios().items():
        assert entry.kind in ("atm", "tcp", "fluid")
        # the fuzz namespace resolves config-driven specs onto the ATM
        # substrate; every other prefix states its tier directly
        prefix = name.split(".", 1)[0]
        assert entry.kind == {"fuzz": "atm"}.get(prefix, prefix)
        module = importlib.import_module(entry.fn.__module__)
        assert getattr(module, entry.fn.__name__) is entry.fn


def test_seed_detection():
    assert get_scenario("atm.onoff").takes_seed  # on/off draws periods
    assert not get_scenario("atm.staggered").takes_seed


def test_unknown_scenario_lists_known_names():
    with pytest.raises(KeyError, match="atm.staggered"):
        get_scenario("atm.nope")


def test_register_rejects_lambdas(scratch_registry):
    with pytest.raises(TypeError, match="module-level"):
        register_scenario("x.lambda", lambda: None,
                          kind="atm")


def test_register_rejects_closures(scratch_registry):
    def closure():
        return None

    with pytest.raises(TypeError, match="module-level"):
        register_scenario("x.closure", closure,
                          kind="atm")


def test_register_rejects_unimportable_callables(scratch_registry):
    # a partial has no qualname pointing at a module-level binding
    from functools import partial
    with pytest.raises(TypeError):
        register_scenario("x.partial",
                          partial(module_level_entry, 0.2), kind="atm")


def test_register_rejects_bad_kind(scratch_registry):
    with pytest.raises(ValueError, match="kind"):
        register_scenario("x.kind", module_level_entry, kind="router")


def test_register_accepts_fluid_kind(scratch_registry):
    entry = register_scenario("x.fluid", module_level_entry,
                              kind="fluid")
    assert get_scenario("x.fluid") is entry
    assert entry.kind == "fluid"


def test_register_accepts_module_level_fn(scratch_registry):
    entry = register_scenario("x.ok", module_level_entry, kind="atm",
                              param_deps=module_level_param_deps)
    assert get_scenario("x.ok") is entry
    assert not entry.takes_seed
