"""Fingerprints: import-closure walking and invalidation granularity."""

from pathlib import Path

import pytest

from repro.exec import SourceIndex, TaskSpec, task_fingerprint

REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


# ----------------------------------------------------------------------
# SourceIndex on a synthetic package tree
# ----------------------------------------------------------------------
@pytest.fixture
def tree(tmp_path):
    root = tmp_path / "repro"
    (root / "sub").mkdir(parents=True)
    (root / "__init__.py").write_text("")
    (root / "a.py").write_text(
        "import repro.b\n"
        "from repro.sub import c\n")
    (root / "b.py").write_text("import json\n")
    (root / "sub" / "__init__.py").write_text("")
    (root / "sub" / "c.py").write_text(
        "from . import d\n"
        "from ..b import something\n")
    (root / "sub" / "d.py").write_text("")
    return root


def test_module_resolution(tree):
    index = SourceIndex(root=tree)
    assert index.module_path("repro.a") == tree / "a.py"
    assert index.module_path("repro.sub") == tree / "sub" / "__init__.py"
    assert index.module_path("repro.sub.c") == tree / "sub" / "c.py"
    assert index.module_path("json") is None
    assert index.module_path("repro.missing") is None
    assert index.is_package("repro.sub")
    assert not index.is_package("repro.a")


def test_imports_resolve_absolute_from_and_relative_forms(tree):
    index = SourceIndex(root=tree)
    # `from repro.sub import c` contributes both the package and c
    assert index.imports_of("repro.a") == ("repro.b", "repro.sub",
                                           "repro.sub.c")
    assert index.imports_of("repro.b") == ()  # stdlib not ours
    # `from . import d` and `from ..b import name`
    assert index.imports_of("repro.sub.c") == ("repro.b", "repro.sub",
                                               "repro.sub.d")


def test_closure_is_transitive_and_digested(tree):
    index = SourceIndex(root=tree)
    closure = set(index.closure(["repro.a"]))
    assert closure == {"repro.a", "repro.b", "repro.sub",
                       "repro.sub.c", "repro.sub.d"}
    assert set(index.closure(["repro.b"])) == {"repro.b"}
    with pytest.raises(KeyError, match="repro.nope"):
        index.closure(["repro.nope"])


def test_closure_digests_change_with_the_file(tree):
    before = SourceIndex(root=tree).closure(["repro.a"])
    with (tree / "sub" / "d.py").open("a") as fh:
        fh.write("# edit\n")
    after = SourceIndex(root=tree).closure(["repro.a"])
    assert before["repro.sub.d"] != after["repro.sub.d"]
    assert before["repro.a"] == after["repro.a"]


def test_all_modules_enumerates_the_tree_sorted(tree):
    index = SourceIndex(root=tree)
    assert index.all_modules() == (
        "repro", "repro.a", "repro.b", "repro.sub", "repro.sub.c",
        "repro.sub.d")
    (tree / "sub" / "__pycache__").mkdir()
    (tree / "sub" / "__pycache__" / "junk.py").write_text("")
    assert "repro.sub.__pycache__.junk" not in SourceIndex(
        root=tree).all_modules()


def test_module_name_of_inverts_module_path(tree):
    index = SourceIndex(root=tree)
    for modname in index.all_modules():
        assert index.module_name_of(index.module_path(modname)) == modname
    assert index.module_name_of(tree / ".." / "elsewhere.py") is None
    assert index.module_name_of(tree / "a.txt") is None


def test_dependents_closure_is_the_reverse_of_imports(tree):
    index = SourceIndex(root=tree)
    # a imports b and sub.c; c imports d and b — so editing d
    # invalidates c and a but never b
    assert set(index.dependents_closure(["repro.sub.d"])) >= {
        "repro.sub.d", "repro.sub.c", "repro.a"}
    assert "repro.b" not in index.dependents_closure(["repro.sub.d"])
    assert set(index.dependents_closure(["repro.b"])) == {
        "repro.a", "repro.b", "repro.sub.c"}


def test_resolve_import_from_handles_relative_levels(tree):
    import ast

    index = SourceIndex(root=tree)
    node = ast.parse("from . import d").body[0]
    assert index.resolve_import_from("repro.sub.c", node) == "repro.sub"
    node = ast.parse("from ..b import something").body[0]
    assert index.resolve_import_from("repro.sub.c", node) == "repro.b"
    node = ast.parse("from repro.sub import c").body[0]
    assert index.resolve_import_from("repro.a", node) == "repro.sub"


# ----------------------------------------------------------------------
# task fingerprints over (a copy of) the real tree
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def copied_tree(tmp_path_factory):
    import shutil

    dest = tmp_path_factory.mktemp("fp") / "repro"
    shutil.copytree(REPO_SRC, dest)
    return dest


ATM = TaskSpec(task_id="a", scenario="atm.staggered",
               params={"duration": 0.1})
TCP = TaskSpec(task_id="t", scenario="tcp.rtt", params={"duration": 1.0})
CAPC = TaskSpec(task_id="c", scenario="atm.staggered",
                params={"algorithm": "capc", "duration": 0.1})
FLUID = TaskSpec(task_id="f", scenario="fluid.staggered",
                 params={"duration": 0.1})
HYBRID = TaskSpec(task_id="h", scenario="fluid.hybrid_e01",
                  params={"duration": 0.1})


def _fingerprints(root):
    index = SourceIndex(root=root)
    return {name: task_fingerprint(spec, index=index)
            for name, spec in (("atm", ATM), ("tcp", TCP),
                               ("capc", CAPC), ("fluid", FLUID),
                               ("hybrid", HYBRID))}


def test_fingerprint_is_deterministic(copied_tree):
    assert _fingerprints(copied_tree) == _fingerprints(copied_tree)


def test_fingerprint_tracks_spec_changes(copied_tree):
    index = SourceIndex(root=copied_tree)
    base = task_fingerprint(ATM, index=index)
    longer = TaskSpec(task_id="a", scenario="atm.staggered",
                      params={"duration": 0.2})
    seeded = TaskSpec(task_id="a", scenario="atm.staggered",
                      params={"duration": 0.1}, seed=3)
    assert task_fingerprint(longer, index=index) != base
    assert task_fingerprint(seeded, index=index) != base
    # the label is not part of the address
    renamed = TaskSpec(task_id="zz", scenario="atm.staggered",
                       params={"duration": 0.1})
    assert task_fingerprint(renamed, index=index) == base


def test_scenario_edit_invalidates_only_that_kind(copied_tree):
    before = _fingerprints(copied_tree)
    with (copied_tree / "scenarios" / "atm.py").open("a") as fh:
        fh.write("\n# touched by the invalidation test\n")
    after = _fingerprints(copied_tree)
    assert after["atm"] != before["atm"]
    assert after["capc"] != before["capc"]  # capc task builds on atm too
    assert after["tcp"] == before["tcp"]    # TCP entries untouched


def test_algorithm_edit_invalidates_only_tasks_that_chose_it(copied_tree):
    before = _fingerprints(copied_tree)
    with (copied_tree / "baselines" / "capc.py").open("a") as fh:
        fh.write("\n# touched by the invalidation test\n")
    after = _fingerprints(copied_tree)
    assert after["capc"] != before["capc"]
    assert after["atm"] == before["atm"]    # phantom task unaffected
    assert after["tcp"] == before["tcp"]


def test_fluid_stepper_edit_never_touches_packet_tasks(copied_tree):
    before = _fingerprints(copied_tree)
    with (copied_tree / "fluid" / "stepper.py").open("a") as fh:
        fh.write("\n# touched by the invalidation test\n")
    after = _fingerprints(copied_tree)
    assert after["fluid"] != before["fluid"]
    assert after["hybrid"] != before["hybrid"]  # hybrid embeds the stepper
    assert after["atm"] == before["atm"]
    assert after["capc"] == before["capc"]
    assert after["tcp"] == before["tcp"]


def test_hybrid_edit_invalidates_only_hybrid(copied_tree):
    before = _fingerprints(copied_tree)
    with (copied_tree / "fluid" / "hybrid.py").open("a") as fh:
        fh.write("\n# touched by the invalidation test\n")
    after = _fingerprints(copied_tree)
    assert after["hybrid"] != before["hybrid"]
    assert after["fluid"] == before["fluid"]   # pure-fluid tasks spared
    assert after["atm"] == before["atm"]


def test_engine_edit_invalidates_everything(copied_tree):
    before = _fingerprints(copied_tree)
    with (copied_tree / "sim" / "engine.py").open("a") as fh:
        fh.write("\n# touched by the invalidation test\n")
    after = _fingerprints(copied_tree)
    assert all(after[name] != before[name] for name in before)


# ----------------------------------------------------------------------
# inline-config (fuzz) specs
# ----------------------------------------------------------------------
def _fuzz_spec(algorithm="phantom", duration=0.1, task_id="fz"):
    return TaskSpec(
        task_id=task_id, scenario="fuzz.generic", seed=11,
        config={"switches": ["S1", "S2"],
                "trunks": [{"a": "S1", "b": "S2"}],
                "sessions": [{"vc": "s0", "route": ["S1", "S2"]}],
                "algorithm": algorithm, "duration": duration})


def test_config_feeds_the_fingerprint(copied_tree):
    index = SourceIndex(root=copied_tree)
    base = task_fingerprint(_fuzz_spec(), index=index)
    assert task_fingerprint(_fuzz_spec(), index=index) == base
    assert task_fingerprint(_fuzz_spec(duration=0.2),
                            index=index) != base
    # the label stays outside the address: cache hits across batches
    assert task_fingerprint(_fuzz_spec(task_id="other"),
                            index=index) == base


def test_config_algorithm_choice_scopes_the_closure(copied_tree):
    # param_deps reads the algorithm out of the inline config, so a
    # baseline edit invalidates only configs that chose that baseline
    index = SourceIndex(root=copied_tree)
    before_capc = task_fingerprint(_fuzz_spec("capc"), index=index)
    before_phantom = task_fingerprint(_fuzz_spec(), index=index)
    with (copied_tree / "baselines" / "capc.py").open("a") as fh:
        fh.write("\n# touched by the fuzz invalidation test\n")
    index = SourceIndex(root=copied_tree)
    assert task_fingerprint(_fuzz_spec("capc"),
                            index=index) != before_capc
    assert task_fingerprint(_fuzz_spec(),
                            index=index) == before_phantom


def test_generic_builder_edit_spares_named_scenarios(copied_tree):
    index = SourceIndex(root=copied_tree)
    before_fuzz = task_fingerprint(_fuzz_spec(), index=index)
    before_atm = task_fingerprint(ATM, index=index)
    with (copied_tree / "scenarios" / "generic.py").open("a") as fh:
        fh.write("\n# touched by the fuzz invalidation test\n")
    index = SourceIndex(root=copied_tree)
    assert task_fingerprint(_fuzz_spec(), index=index) != before_fuzz
    assert task_fingerprint(ATM, index=index) == before_atm
