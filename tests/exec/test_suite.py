"""The suite table and sweep-grid expansion."""

import pytest

from repro.exec import (TaskSpec, all_scenarios, experiment_ids,
                        suite_specs, sweep_specs)
from repro.exec.suite import MIN_SCALE, SUITE, _TIME_KEYS


# ----------------------------------------------------------------------
# the suite table
# ----------------------------------------------------------------------
def test_suite_rows_are_unique_and_resolvable():
    ids = [task_id for task_id, _, _ in SUITE]
    assert len(ids) == len(set(ids))
    known = set(all_scenarios())
    for _, scenario, _ in SUITE:
        assert scenario in known


def test_suite_covers_e01_through_e26():
    assert experiment_ids() == [f"E{n:02d}" for n in range(1, 27)]


def test_suite_specs_build_and_scale():
    full = suite_specs()
    assert len(full) == len(SUITE)
    scaled = suite_specs(scale=0.5)
    for spec, half in zip(full, scaled):
        assert half.task_id == spec.task_id
        for key in _TIME_KEYS:
            if key in spec.params:
                assert half.params[key] == pytest.approx(
                    spec.params[key] * 0.5)
        untouched = set(spec.params) - set(_TIME_KEYS)
        assert {k: half.params[k] for k in untouched} \
            == {k: spec.params[k] for k in untouched}


def test_scale_is_part_of_the_spec_identity():
    full = suite_specs()[0]
    scaled = suite_specs(scale=0.5)[0]
    assert full.canonical() != scaled.canonical()


def test_suite_scale_floor():
    with pytest.raises(ValueError, match="scale"):
        suite_specs(scale=MIN_SCALE / 2)


def test_experiment_filter_and_case():
    picked = suite_specs(experiments=["e01", "E11"])
    assert [s.task_id for s in picked] == ["E01", "E11-droptail",
                                           "E11-sd"]
    with pytest.raises(ValueError, match="E99"):
        suite_specs(experiments=["E99"])


def test_seeds_only_where_the_entry_draws():
    by_id = {s.task_id: s for s in suite_specs(seed=5)}
    assert by_id["E02"].seed is not None      # on/off draws periods
    assert by_id["E01"].seed is None          # staggered is seed-free
    # distinct tasks get distinct derived seeds
    seeds = [s.seed for s in suite_specs(seed=5) if s.seed is not None]
    assert len(seeds) == len(set(seeds))
    # and the root seed matters
    assert by_id["E02"].seed != {
        s.task_id: s for s in suite_specs(seed=6)}["E02"].seed


# ----------------------------------------------------------------------
# sweeps
# ----------------------------------------------------------------------
def test_sweep_expands_the_cartesian_product_in_order():
    specs = sweep_specs("atm.staggered",
                        {"n_sessions": [2, 3], "duration": [0.1, 0.2]})
    assert [s.task_id for s in specs] == [
        "atm.staggered[n_sessions=2,duration=0.1]",
        "atm.staggered[n_sessions=2,duration=0.2]",
        "atm.staggered[n_sessions=3,duration=0.1]",
        "atm.staggered[n_sessions=3,duration=0.2]",
    ]
    assert specs[2].params == {"n_sessions": 3, "duration": 0.1}


def test_sweep_dotted_keys_reach_nested_params():
    (spec,) = sweep_specs(
        "atm.staggered",
        {"algorithm_params.utilization_factor": [0.9]},
        base={"duration": 0.1})
    assert spec.params == {
        "duration": 0.1,
        "algorithm_params": {"utilization_factor": 0.9}}


def test_sweep_does_not_share_or_mutate_base():
    base = {"duration": 0.1, "algorithm_params": {"interval": 1e-3}}
    specs = sweep_specs("atm.staggered",
                        {"algorithm_params.utilization_factor": [0.8,
                                                                 0.9]},
                        base=base)
    assert base == {"duration": 0.1,
                    "algorithm_params": {"interval": 1e-3}}
    a, b = (s.params["algorithm_params"] for s in specs)
    assert a["utilization_factor"] == 0.8
    assert b["utilization_factor"] == 0.9
    assert a["interval"] == b["interval"] == 1e-3


def test_sweep_attaches_probes_and_validates_axes():
    (spec,) = sweep_specs("atm.staggered", {"duration": [0.1]},
                          probes=["s0.acr", "s1.acr"])
    assert spec.probes == ("s0.acr", "s1.acr")
    with pytest.raises(ValueError, match="at least one axis"):
        sweep_specs("atm.staggered", {})
    with pytest.raises(ValueError, match="no values"):
        sweep_specs("atm.staggered", {"duration": []})
    with pytest.raises(KeyError):
        sweep_specs("atm.nope", {"duration": [0.1]})


def test_sweep_specs_are_valid_task_specs():
    for spec in sweep_specs("tcp.rtt", {"duration": [1.0, 2.0]}):
        assert isinstance(spec, TaskSpec)
        assert spec.seed is None  # tcp.rtt takes no seed
