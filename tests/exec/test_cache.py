"""ResultCache: round-trips, corruption handling, atomicity hygiene."""

import json

from repro.exec import ResultCache
from repro.exec.cache import CACHE_VERSION

FP = "ab" + "0" * 62
PAYLOAD = {"status": "ok", "metrics": {"jain": 0.999875},
           "probe_digests": {"s0.acr": {"n": 3, "sha256": "x"}}}


def test_round_trip_and_stats(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.get(FP) is None
    cache.put(FP, PAYLOAD, spec={"task_id": "E01"})
    assert FP in cache
    assert cache.get(FP) == PAYLOAD
    assert cache.stats() == {"hits": 1, "misses": 1}


def test_floats_survive_bitwise(tmp_path):
    cache = ResultCache(tmp_path)
    value = 0.1 + 0.2  # not representable; repr round-trip must hold
    cache.put(FP, {"status": "ok", "metrics": {"v": value}})
    got = cache.get(FP)["metrics"]["v"]
    assert got == value and got.hex() == value.hex()


def test_entries_are_sharded_by_prefix(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(FP, PAYLOAD)
    assert (tmp_path / FP[:2] / f"{FP}.json").is_file()
    # no temp files left behind
    assert not list(tmp_path.rglob("*.tmp"))


def test_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(FP, PAYLOAD)
    path = tmp_path / FP[:2] / f"{FP}.json"
    path.write_text("{ not json")
    assert cache.get(FP) is None


def test_version_or_fingerprint_mismatch_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(FP, PAYLOAD)
    path = tmp_path / FP[:2] / f"{FP}.json"
    entry = json.loads(path.read_text())

    stale = dict(entry, cache_version=CACHE_VERSION - 1)
    path.write_text(json.dumps(stale))
    assert cache.get(FP) is None

    moved = dict(entry, fingerprint="cd" + "0" * 62)
    path.write_text(json.dumps(moved))
    assert cache.get(FP) is None

    # intact entry still hits
    path.write_text(json.dumps(entry))
    assert cache.get(FP) == PAYLOAD


def test_put_overwrites(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(FP, PAYLOAD)
    cache.put(FP, {"status": "ok", "metrics": {}})
    assert cache.get(FP) == {"status": "ok", "metrics": {}}
