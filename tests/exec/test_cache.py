"""ResultCache: round-trips, corruption handling, atomicity hygiene."""

import json
import threading

from repro.exec import ResultCache
from repro.exec.cache import CACHE_VERSION

FP = "ab" + "0" * 62
PAYLOAD = {"status": "ok", "metrics": {"jain": 0.999875},
           "probe_digests": {"s0.acr": {"n": 3, "sha256": "x"}}}


def test_round_trip_and_stats(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.get(FP) is None
    cache.put(FP, PAYLOAD, spec={"task_id": "E01"})
    assert FP in cache
    assert cache.get(FP) == PAYLOAD
    assert cache.stats() == {"hits": 1, "misses": 1}


def test_floats_survive_bitwise(tmp_path):
    cache = ResultCache(tmp_path)
    value = 0.1 + 0.2  # not representable; repr round-trip must hold
    cache.put(FP, {"status": "ok", "metrics": {"v": value}})
    got = cache.get(FP)["metrics"]["v"]
    assert got == value and got.hex() == value.hex()


def test_entries_are_sharded_by_prefix(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(FP, PAYLOAD)
    assert (tmp_path / FP[:2] / f"{FP}.json").is_file()
    # no temp files left behind
    assert not list(tmp_path.rglob("*.tmp"))


def test_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(FP, PAYLOAD)
    path = tmp_path / FP[:2] / f"{FP}.json"
    path.write_text("{ not json")
    assert cache.get(FP) is None


def test_version_or_fingerprint_mismatch_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(FP, PAYLOAD)
    path = tmp_path / FP[:2] / f"{FP}.json"
    entry = json.loads(path.read_text())

    stale = dict(entry, cache_version=CACHE_VERSION - 1)
    path.write_text(json.dumps(stale))
    assert cache.get(FP) is None

    moved = dict(entry, fingerprint="cd" + "0" * 62)
    path.write_text(json.dumps(moved))
    assert cache.get(FP) is None

    # intact entry still hits
    path.write_text(json.dumps(entry))
    assert cache.get(FP) == PAYLOAD


def test_put_overwrites(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(FP, PAYLOAD)
    cache.put(FP, {"status": "ok", "metrics": {}})
    assert cache.get(FP) == {"status": "ok", "metrics": {}}


def test_truncated_entry_is_a_miss_and_rerun_repairs(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(FP, PAYLOAD)
    path = tmp_path / FP[:2] / f"{FP}.json"
    # a torn write: the file ends mid-JSON
    path.write_text(path.read_text()[: len(path.read_text()) // 2])
    assert cache.get(FP) is None
    # the re-run's put overwrites the torn entry cleanly
    cache.put(FP, PAYLOAD)
    assert cache.get(FP) == PAYLOAD


def test_empty_entry_file_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(FP, PAYLOAD)
    (tmp_path / FP[:2] / f"{FP}.json").write_text("")
    assert cache.get(FP) is None


def test_concurrent_writers_same_key_leave_one_valid_entry(tmp_path):
    cache = ResultCache(tmp_path)
    barrier = threading.Barrier(8)
    errors = []

    def writer(i: int) -> None:
        try:
            barrier.wait(timeout=30)
            for _ in range(25):
                cache.put(FP, dict(PAYLOAD, writer=i))
                got = cache.get(FP)
                # always *some* writer's complete entry, never a blend
                assert got is not None and got["writer"] in range(8)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(i,))
               for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert errors == []
    final = cache.get(FP)
    assert final is not None and final["writer"] in range(8)
    assert not list(tmp_path.rglob("*.tmp"))


def test_concurrent_stats_do_not_lose_counts(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(FP, PAYLOAD)
    per_thread, threads_n = 50, 8

    def reader() -> None:
        for _ in range(per_thread):
            cache.get(FP)

    threads = [threading.Thread(target=reader) for _ in range(threads_n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    stats = cache.stats()
    assert stats["hits"] == per_thread * threads_n
    assert stats["misses"] == 0


def test_tmp_names_are_thread_unique(tmp_path, monkeypatch):
    """Two threads writing the same key must not share a temp file."""
    import repro.exec.cache as cache_mod

    cache = ResultCache(tmp_path)
    seen: list[str] = []
    real_replace = cache_mod.os.replace

    def spying_replace(src, dst):
        seen.append(str(src))
        real_replace(src, dst)

    monkeypatch.setattr(cache_mod.os, "replace", spying_replace)
    cache.put(FP, PAYLOAD)
    t = threading.Thread(target=cache.put, args=(FP, PAYLOAD))
    t.start()
    t.join(timeout=30)
    assert len(seen) == 2 and seen[0] != seen[1]
