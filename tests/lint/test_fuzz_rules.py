"""FZZ001 — fuzz modules draw only from injected Random/RngStreams."""

from tests.lint.helpers import assert_rule_matches_fixture, lint_snippet


def test_fzz001_fixture():
    assert_rule_matches_fixture("FZZ001", "fzz001_imports.py",
                                package="fuzz")


def test_fzz001_only_applies_to_core_fuzz_modules():
    source = "import random\n"
    in_fuzz = [f for f in lint_snippet(
        source, "src/repro/fuzz/gen.py") if f.rule_id == "FZZ001"]
    elsewhere = [f for f in lint_snippet(
        source, "src/repro/scenarios/workloads.py")
        if f.rule_id == "FZZ001"]
    assert len(in_fuzz) == 1
    assert elsewhere == []


def test_fzz001_exempts_the_driver_module():
    source = "import time\nimport random\n"
    findings = [f for f in lint_snippet(
        source, "src/repro/fuzz/cli.py") if f.rule_id == "FZZ001"]
    assert findings == []


def test_fzz001_allows_the_injected_handle_surfaces():
    source = ("from random import Random\n"
              "from repro.sim import RngStreams\n"
              "from repro.sim.rng import RngStreams\n"
              "from repro.exec.spec import TaskSpec, derive_seed\n")
    findings = [f for f in lint_snippet(
        source, "src/repro/fuzz/gen.py") if f.rule_id == "FZZ001"]
    assert findings == []


def test_fzz001_flags_nonclass_names_from_random():
    source = "from random import Random, choice\n"
    findings = [f for f in lint_snippet(
        source, "src/repro/fuzz/shrink.py") if f.rule_id == "FZZ001"]
    assert len(findings) == 1
    assert "choice" in findings[0].message


def test_fzz001_message_names_the_module():
    source = "import secrets\n"
    findings = [f for f in lint_snippet(
        source, "src/repro/fuzz/oracle.py") if f.rule_id == "FZZ001"]
    assert len(findings) == 1
    assert "secrets" in findings[0].message


def test_shipped_fuzz_package_is_fzz001_clean():
    from pathlib import Path

    from repro.lint import lint_paths

    package = (Path(__file__).resolve().parents[2]
               / "src" / "repro" / "fuzz")
    findings, files = lint_paths([str(package)], select=["FZZ001"])
    assert files >= 6
    assert findings == []
