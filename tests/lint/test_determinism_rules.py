"""DET001–DET004: determinism rules, one fixture each."""

from tests.lint.helpers import (assert_rule_matches_fixture, lint_fixture,
                                lint_snippet)


def test_det001_global_random_flagged_and_suppressible():
    assert_rule_matches_fixture("DET001", "det001_global_random.py")


def test_det001_ignores_files_outside_repro():
    source = "import random\nx = random.random()\n"
    findings = [f for f in lint_snippet(source, path="tests/conftest.py")
                if f.rule_id == "DET001"]
    assert findings == []


def test_det002_wall_clock_flagged_and_suppressible():
    assert_rule_matches_fixture("DET002", "det002_wall_clock.py")


def test_det002_flags_datetime_now_inline():
    source = ("import datetime\n"
              "def stamp():\n"
              "    return datetime.datetime.now()\n")
    findings = [f for f in lint_snippet(source) if f.rule_id == "DET002"]
    assert [f.line for f in findings] == [3]


def test_det003_set_iteration_flagged_and_suppressible():
    assert_rule_matches_fixture("DET003", "det003_set_iteration.py")


def test_det003_inactive_without_scheduling():
    source = "def f(xs):\n    return [x for x in set(xs)]\n"
    assert [f for f in lint_snippet(source) if f.rule_id == "DET003"] == []


def test_det004_inline_import_flagged_and_suppressible():
    assert_rule_matches_fixture("DET004", "det004_inline_import.py")


def test_findings_carry_rule_metadata():
    findings = lint_fixture("det001_global_random.py", "DET001")
    assert findings, "fixture must produce findings"
    for finding in findings:
        assert finding.path.endswith("det001_global_random.py")
        assert finding.col >= 1
        assert "random" in finding.message
