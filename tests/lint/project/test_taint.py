"""Determinism taint: DTT001/DTT002 over the det fixture tree."""

import pytest

from tests.lint.project.helpers import (expected_sites, fixture_graph,
                                        found_sites, run_pass)


@pytest.fixture(scope="module")
def det_graph():
    return fixture_graph("det")


def test_dtt001_flags_exactly_the_tagged_sources(det_graph):
    findings = run_pass("DTT001", det_graph)
    assert found_sites(findings, "det") == expected_sites("det", "DTT001")


def test_dtt001_message_carries_the_chain_from_the_sim_root(det_graph):
    findings = run_pass("DTT001", det_graph)
    by_line = {f.line: f for f in findings}
    jitter = next(f for f in findings
                  if "random.Random() with no seed" in f.message)
    assert "repro.sim.engine.run_scenario -> repro.obs.probes.jitter" \
        in jitter.message
    assert jitter.symbol == "repro.obs.probes.jitter"
    assert by_line  # sanity: anchored at real source lines


def test_dtt001_skips_same_function_global_draws(det_graph):
    # engine.local_draw() calls random.random() directly: DET001's job,
    # not the taint pass's (min_hops=1 for locally-covered sources)
    findings = run_pass("DTT001", det_graph)
    assert all(f.symbol != "repro.sim.engine.local_draw"
               for f in findings)


def test_dtt002_flags_exactly_the_tagged_sources(det_graph):
    findings = run_pass("DTT002", det_graph)
    assert found_sites(findings, "det") == expected_sites("det", "DTT002")


def test_pragma_on_the_leaf_stops_the_taint(det_graph):
    # probes.pinned_stamp carries a DET002 disable pragma; neither
    # taint rule may resurface it
    for rule in ("DTT001", "DTT002"):
        assert all(f.symbol != "repro.obs.probes.pinned_stamp"
                   for f in run_pass(rule, det_graph))


def test_seeded_random_is_not_flagged(det_graph):
    assert all(f.symbol != "repro.obs.probes.seeded_jitter"
               for f in run_pass("DTT001", det_graph))
