"""Concurrency-domain classification and the CONC* passes."""

import pytest

from tests.lint.project.helpers import (expected_sites, fixture_graph,
                                        found_sites, run_pass)

from repro.lint.project.domains import (DOMAIN_ASYNC, DOMAIN_THREAD,
                                        classify_domains)


@pytest.fixture(scope="module")
def conc_graph():
    return fixture_graph("conc")


def test_domains_seed_and_propagate(conc_graph):
    domains = classify_domains(conc_graph)
    assert DOMAIN_ASYNC in domains["repro.serve.gateway.handle"]
    # submitted entry and everything it calls runs on the pool thread
    assert DOMAIN_THREAD in domains["repro.serve.gateway.bridge"]
    assert DOMAIN_THREAD in domains["repro.serve.gateway.shim"]
    assert DOMAIN_THREAD in domains["repro.serve.gateway.Store.put"]
    # the executor hand-off is not a call edge: wire() itself does not
    # inherit the thread domain from what it submits
    assert DOMAIN_THREAD not in domains.get("repro.serve.gateway.wire",
                                            frozenset())


def test_conc001_flags_exactly_the_tagged_globals(conc_graph):
    findings = run_pass("CONC001", conc_graph)
    assert found_sites(findings, "conc") == expected_sites("conc",
                                                           "CONC001")
    symbols = {f.symbol for f in findings}
    assert symbols == {"repro.serve.state.PENDING",
                       "repro.serve.state.RESULTS"}


def test_conc002_flags_exactly_the_tagged_entries(conc_graph):
    findings = run_pass("CONC002", conc_graph)
    assert found_sites(findings, "conc") == expected_sites("conc",
                                                           "CONC002")
    # the message carries the chain to the fork site
    by_symbol = {f.symbol: f.message for f in findings}
    assert "fanout" in by_symbol["repro.exec.bridge.entry"]
    assert "raw_fork" in by_symbol["repro.exec.bridge.raw_fork"]


def test_conc003_flags_exactly_the_tagged_attributes(conc_graph):
    findings = run_pass("CONC003", conc_graph)
    assert found_sites(findings, "conc") == expected_sites("conc",
                                                           "CONC003")
    assert {f.symbol for f in findings} == {
        "repro.serve.gateway.Store.items",
        "repro.serve.gateway.Counter.seen"}
