"""Fork-after-thread surfaces — the CONC002 positives and twins."""

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor


def entry(spec):                    # violation CONC002
    """Thread entry reaching a fork pool two calls down."""
    return fanout(spec)


def fanout(spec):
    with ProcessPoolExecutor() as pool:
        return pool.submit(work, spec)


def raw_fork():                     # violation CONC002
    """Thread entry forking directly."""
    import os

    return os.fork()


def work(spec):
    return spec


def safe_entry(spec):
    """Negative twin: thread entry that stays in-process."""
    return work(spec)


def wire():
    pool = ThreadPoolExecutor(max_workers=2)
    pool.submit(entry, None)
    pool.submit(raw_fork)
    pool.submit(safe_entry, None)


def main_thread_fanout(spec):
    """Negative twin: fork pool created off the thread domain."""
    return fanout(spec)
