"""Async gateway with a thread bridge — the CONC001/CONC003 surface."""

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.serve import state

_LOCK = threading.Lock()


def bridge(job):
    """Runs on a pool worker: writes two globals, one unguarded."""
    state.PENDING.append(job)
    state.RESULTS[job] = "done"
    state.LOCAL_ONLY.append(job)


def guarded_bridge(job):
    with _LOCK:
        state.GUARDED.append(job)


async def handle(job):
    pool = ThreadPoolExecutor(max_workers=1)
    pool.submit(bridge, job)
    pool.submit(guarded_bridge, job)
    return len(state.PENDING) + len(state.RESULTS) + len(state.FROZEN)


async def drain():
    with _LOCK:
        return list(state.GUARDED)


class Store:                      # violation CONC003
    """CONC003 positive: ``items`` crosses thread -> asyncio unlocked."""

    def put(self, item):
        self.items = [item]

    async def get(self):
        return self.items


class Counter:                    # violation CONC003
    """CONC003 positive number two, via a mutation call."""

    def __init__(self):
        self.seen = []

    def bump(self, item):
        self.seen.append(item)

    async def snapshot(self):
        return list(self.seen)


class LockedStore:
    """Negative twin: both sides hold the lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self.items = []

    def put(self, item):
        with self._lock:
            self.items = [item]

    async def get(self):
        with self._lock:
            return self.items


def shim():
    """Thread-side entry: drives the stores from a pool worker."""
    store = Store()
    store.put(1)
    counter = Counter()
    counter.bump(2)
    locked = LockedStore()
    locked.put(3)


def wire():
    pool = ThreadPoolExecutor(max_workers=1)
    pool.submit(shim)
