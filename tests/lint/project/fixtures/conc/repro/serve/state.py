"""Module-global state shared across the gateway's domains.

CONC001 positives: PENDING (written from the thread bridge, read from
the event loop) and RESULTS (dict, written thread-side via subscript,
read async-side).  Negative twins: GUARDED is only touched under a
lock, FROZEN is only ever read, and LOCAL_ONLY never leaves the
thread domain.
"""

PENDING = []        # violation CONC001
RESULTS = {}        # violation CONC001
GUARDED = []
FROZEN = (1, 2, 3)
LOCAL_ONLY = []
