"""Helpers outside the sim tree that the sim roots call into.

The taint pass must flag the sources *here*, with the chain from the
sim root in the message; the pragma'd and seeded twins must stay
silent.
"""

import os
import random
import time
import uuid


def jitter():
    rng = random.Random()           # violation DTT001
    return rng.random()


def entropy():
    return uuid.uuid4().int         # violation DTT001


def draw():
    return random.random()          # violation DTT001


def stamp():
    return time.time()              # violation DTT002


def config():
    return os.getenv("REPRO_SEED")  # violation DTT002


def seeded_jitter(seed):
    rng = random.Random(seed)
    return rng.random()


def pinned_stamp():
    return time.time()  # lint: disable=DET002 -- reviewed measurement boundary
