"""Sim-domain roots that reach nondeterminism through call chains."""

from repro.obs import probes


def run_scenario():
    return probes.jitter() + probes.stamp() + probes.config()


def warmup():
    return probes.entropy() + probes.draw()


def seeded_scenario():
    return probes.seeded_jitter(42) + probes.pinned_stamp()


def local_draw():
    # a *same-function* global draw is DET001's to report, not DTT001's
    import random

    return random.random()
