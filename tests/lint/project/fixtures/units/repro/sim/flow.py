"""Cross-function unit flows the syntactic UNT rules cannot see."""


def cell_delay_s(rate_mbps):
    return 424.0 / (rate_mbps * 1e6)


def window_ms(rtt_ms):
    return 4 * rtt_ms


def schedule(interval_ms):
    return interval_ms


def submit(deadline_s):
    return deadline_s


def mixes_call_units():
    delay_s = cell_delay_s(155.0)
    schedule(delay_s)               # violation UNI001
    submit(window_ms(2.0))          # violation UNI001
    return delay_s


def mislabels_assignment():
    total_ms = cell_delay_s(155.0)  # violation UNI002
    return total_ms


def gap_ms(rate_mbps):
    return cell_delay_s(rate_mbps)  # violation UNI002


def converts_correctly():
    # multiplication clears the unit, so explicit conversion is silent
    delay_s = cell_delay_s(155.0)
    delay_ms = delay_s * 1e3
    schedule(delay_ms)
    return submit(delay_s)


def unknown_stays_silent(raw):
    # no suffix, no inferred unit: never a mismatch
    schedule(raw)
    budget_ms = window_ms(2.0)
    return budget_ms
