"""Interprocedural unit inference: UNI001/UNI002 over the units tree."""

import pytest

from tests.lint.project.helpers import (expected_sites, fixture_graph,
                                        found_sites, run_pass)

from repro.lint.project.unitsflow import unit_of_identifier


@pytest.fixture(scope="module")
def units_graph():
    return fixture_graph("units")


def test_unit_of_identifier_uses_longest_suffix():
    assert unit_of_identifier("rate_mbps") == "Mb/s"
    assert unit_of_identifier("delay_ms") == "ms"
    assert unit_of_identifier("delay_s") == "s"
    assert unit_of_identifier("_s") is None          # bare suffix
    assert unit_of_identifier("bus") is None


def test_uni001_flags_exactly_the_tagged_call_sites(units_graph):
    findings = run_pass("UNI001", units_graph)
    assert found_sites(findings, "units") == expected_sites("units",
                                                            "UNI001")
    messages = " | ".join(f.message for f in findings)
    assert "carries s but the parameter declares ms" in messages
    assert "carries ms but the parameter declares s" in messages


def test_uni002_flags_exactly_the_tagged_returns_and_assignments(
        units_graph):
    findings = run_pass("UNI002", units_graph)
    assert found_sites(findings, "units") == expected_sites("units",
                                                            "UNI002")


def test_conversions_and_unknowns_stay_silent(units_graph):
    for rule in ("UNI001", "UNI002"):
        for f in run_pass(rule, units_graph):
            assert f.symbol not in (
                "repro.sim.flow.converts_correctly",
                "repro.sim.flow.unknown_stays_silent"), f.render()


def test_api_annotations_type_the_real_conversion_helpers(tmp_path):
    from tests.lint.project.helpers import write_tree

    from repro.lint.project import ProjectGraph

    index = write_tree(tmp_path, {
        "sim/units.py": """
            def cell_time(rate_mbps):
                return 424.0 / (rate_mbps * 1e6)
        """,
        "sim/user.py": """
            from repro.sim.units import cell_time

            def takes_ms(gap_ms):
                return gap_ms

            def caller():
                return takes_ms(cell_time(155.0))   # violation UNI001
        """,
    })
    graph = ProjectGraph(index)
    findings = run_pass("UNI001", graph)
    assert len(findings) == 1
    assert "carries s but the parameter declares ms" \
        in findings[0].message
