"""ProjectGraph: symbols, aliases, call resolution, state facts."""

from tests.lint.project.helpers import write_tree

from repro.lint.project import ProjectGraph


def _graph(tmp_path, files):
    return ProjectGraph(write_tree(tmp_path, files))


def test_symbol_table_covers_functions_methods_and_globals(tmp_path):
    graph = _graph(tmp_path, {
        "core/engine.py": """
            QUEUE = []
            LIMIT = 10

            def push(item):
                QUEUE.append(item)

            class Simulator:
                def run(self):
                    return push(1)
        """,
    })
    assert "repro.core.engine.push" in graph.functions
    assert "repro.core.engine.Simulator.run" in graph.functions
    assert "repro.core.engine.Simulator" in graph.classes
    assert ("repro.core.engine", "QUEUE") in graph.globals
    assert graph.globals[("repro.core.engine", "QUEUE")].mutable
    assert not graph.globals[("repro.core.engine", "LIMIT")].mutable


def test_calls_resolve_across_modules_and_relative_imports(tmp_path):
    graph = _graph(tmp_path, {
        "a.py": """
            from repro import b
            from repro.sub.c import helper

            def top():
                b.middle()
                helper()
        """,
        "b.py": """
            from .sub import c

            def middle():
                c.helper()
        """,
        "sub/c.py": """
            def helper():
                return 1
        """,
    })
    assert set(graph.callees("repro.a.top")) == {
        "repro.b.middle", "repro.sub.c.helper"}
    assert set(graph.callees("repro.b.middle")) == {"repro.sub.c.helper"}


def test_self_method_calls_resolve_through_base_classes(tmp_path):
    graph = _graph(tmp_path, {
        "m.py": """
            class Base:
                def step(self):
                    return 0

            class Derived(Base):
                def run(self):
                    return self.step()
        """,
    })
    assert set(graph.callees("repro.m.Derived.run")) == {
        "repro.m.Base.step"}


def test_locals_typed_by_construction_resolve_method_calls(tmp_path):
    graph = _graph(tmp_path, {
        "m.py": """
            class Store:
                def put(self, x):
                    self.x = x

            def use():
                s = Store()
                s.put(1)

            def use_with():
                with Store() as s:
                    s.put(2)
        """,
    })
    assert "repro.m.Store.put" in graph.callees("repro.m.use")
    assert "repro.m.Store.put" in graph.callees("repro.m.use_with")


def test_state_access_facts(tmp_path):
    graph = _graph(tmp_path, {
        "state.py": """
            TABLE = {}
        """,
        "m.py": """
            from repro import state

            CACHE = []

            def writer(k, v):
                state.TABLE[k] = v
                CACHE.append(v)

            def reader(k):
                return state.TABLE.get(k), len(CACHE)

            def shadow():
                CACHE = [1]
                return CACHE
        """,
    })
    writer = graph.functions["repro.m.writer"]
    reader = graph.functions["repro.m.reader"]
    shadow = graph.functions["repro.m.shadow"]
    assert ("repro.state", "TABLE") in writer.global_writes
    assert ("repro.m", "CACHE") in writer.global_writes
    assert ("repro.state", "TABLE") in reader.global_reads
    assert ("repro.m", "CACHE") in reader.global_reads
    # a local rebinding is not a global write
    assert ("repro.m", "CACHE") not in shadow.global_writes


def test_attr_reads_writes_and_lock_detection(tmp_path):
    graph = _graph(tmp_path, {
        "m.py": """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.items = []

                def put(self, x):
                    with self._lock:
                        self.items.append(x)

                def peek(self):
                    return self.items
        """,
    })
    put = graph.functions["repro.m.Box.put"]
    peek = graph.functions["repro.m.Box.peek"]
    assert put.uses_lock and not peek.uses_lock
    assert "items" in put.attr_writes
    assert "items" in peek.attr_reads


def test_value_references_are_refs_not_calls(tmp_path):
    graph = _graph(tmp_path, {
        "m.py": """
            def work():
                return 1

            def dispatch(pool):
                pool.submit(work)
                runner = work
                return runner
        """,
    })
    dispatch = graph.functions["repro.m.dispatch"]
    assert "repro.m.work" in dispatch.refs
    assert "repro.m.work" not in graph.callees("repro.m.dispatch")
    assert "repro.m.work" in graph.callees("repro.m.dispatch",
                                           include_refs=True)


def test_unparseable_module_is_skipped_not_fatal(tmp_path):
    graph = _graph(tmp_path, {
        "ok.py": """
            def fine():
                return 1
        """,
        "broken.py": """
            def oops(:
        """,
    })
    assert "repro.ok.fine" in graph.functions
    assert "repro.broken" not in graph.modules
