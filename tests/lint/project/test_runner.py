"""analyze_project: cache, baseline, changed-scoping, suppressions."""

from tests.lint.project.helpers import write_tree

from repro.lint.project import (analyze_project, changed_modules,
                                load_baseline, write_baseline)
from repro.lint.project.cache import program_digest

RACY = {
    "serve/state.py": """
        PENDING = []
    """,
    "serve/gateway.py": """
        from concurrent.futures import ThreadPoolExecutor

        from repro.serve import state

        def bridge(job):
            state.PENDING.append(job)

        async def handle(job):
            pool = ThreadPoolExecutor(max_workers=1)
            pool.submit(bridge, job)
            return len(state.PENDING)
    """,
}


def test_analyze_reports_the_race_and_counts_modules(tmp_path):
    report = analyze_project(write_tree(tmp_path, RACY))
    assert [f.rule_id for f in report.findings] == ["CONC001"]
    assert report.findings[0].symbol == "repro.serve.state.PENDING"
    assert report.modules_analyzed == 4   # 2 inits + 2 modules
    assert not report.clean


def test_select_and_ignore_filter_passes(tmp_path):
    index = write_tree(tmp_path, RACY)
    assert analyze_project(index, select=["DTT001"]).findings == []
    assert analyze_project(index, ignore=["CONC001"]).findings == []
    assert analyze_project(index, select=["CONC001"]).findings


def test_cache_warm_hit_and_invalidation_on_edit(tmp_path):
    index = write_tree(tmp_path, RACY)
    cache_dir = str(tmp_path / "cache")
    cold = analyze_project(index, cache_dir=cache_dir)
    warm = analyze_project(index, cache_dir=cache_dir)
    assert not cold.from_cache and warm.from_cache
    assert warm.findings == cold.findings
    assert warm.program_digest == cold.program_digest

    # any edit anywhere changes the program digest: full re-analysis
    state = tmp_path / "repro" / "serve" / "state.py"
    state.write_text(state.read_text() + "\nOTHER = 1\n")
    index2 = write_tree(tmp_path, {})     # fresh index over same tree
    after = analyze_project(index2, cache_dir=cache_dir)
    assert not after.from_cache
    assert after.program_digest != cold.program_digest


def test_cache_is_bypassed_for_partial_runs(tmp_path):
    index = write_tree(tmp_path, RACY)
    cache_dir = str(tmp_path / "cache")
    analyze_project(index, cache_dir=cache_dir)
    partial = analyze_project(index, cache_dir=cache_dir,
                              select=["CONC001"])
    assert not partial.from_cache


def test_baseline_filters_and_reports_stale_entries(tmp_path):
    index = write_tree(tmp_path, RACY)
    report = analyze_project(index)
    bl_path = tmp_path / "baseline.json"
    write_baseline(str(bl_path), report.findings)
    baseline = load_baseline(str(bl_path))
    again = analyze_project(index, baseline=baseline)
    assert again.findings == [] and again.baselined == 1
    assert again.clean

    # fix the race -> the entry goes stale and the run is not clean
    fixed = dict(RACY)
    fixed["serve/gateway.py"] = """
        from repro.serve import state

        async def handle(job):
            return len(state.PENDING)
    """
    tmp2 = tmp_path / "fixed"
    index2 = write_tree(tmp2, fixed)
    stale_run = analyze_project(index2,
                                baseline=load_baseline(str(bl_path)))
    assert stale_run.findings == []
    assert len(stale_run.stale_baseline) == 1
    assert not stale_run.clean


def test_baseline_requires_justifications(tmp_path):
    import json

    import pytest

    bl_path = tmp_path / "baseline.json"
    bl_path.write_text(json.dumps({
        "version": 1,
        "entries": [{"rule": "CONC001", "path": "x.py",
                     "symbol": "repro.x.Y", "justification": "  "}],
    }))
    with pytest.raises(ValueError, match="justification"):
        load_baseline(str(bl_path))


def test_baseline_matches_on_symbol_despite_line_drift(tmp_path):
    index = write_tree(tmp_path, RACY)
    report = analyze_project(index)
    bl_path = tmp_path / "baseline.json"
    write_baseline(str(bl_path), report.findings)

    # prepend lines: the finding moves, the symbol does not
    state = tmp_path / "repro" / "serve" / "state.py"
    state.write_text('"""Docstring pushing lines down."""\n\n\n'
                     + state.read_text())
    drifted = analyze_project(write_tree(tmp_path, {}),
                              baseline=load_baseline(str(bl_path)))
    assert drifted.clean


def test_changed_modules_is_the_reverse_import_closure(tmp_path):
    index = write_tree(tmp_path, RACY)
    state_path = str(tmp_path / "repro" / "serve" / "state.py")
    mods = changed_modules(index, [state_path])
    assert "repro.serve.state" in mods
    assert "repro.serve.gateway" in mods      # imports state
    assert changed_modules(index, ["README.md"]) == set()


def test_restrict_modules_trims_reporting_not_analysis(tmp_path):
    index = write_tree(tmp_path, RACY)
    scoped = analyze_project(index,
                             restrict_modules={"repro.serve.state"})
    assert [f.rule_id for f in scoped.findings] == ["CONC001"]
    none = analyze_project(index, restrict_modules=set())
    assert none.findings == []


def test_inline_pragma_suppresses_a_project_finding(tmp_path):
    suppressed = dict(RACY)
    suppressed["serve/state.py"] = """
        PENDING = []  # lint: disable=CONC001 -- handoff audited
    """
    index = write_tree(tmp_path / "supp", suppressed)
    registry: dict = {}
    report = analyze_project(index, suppression_registry=registry)
    assert report.findings == []
    supp = next(s for path, s in registry.items()
                if path.endswith("state.py"))
    assert supp.unused() == []    # the pragma fired, so it is not dead
