"""Shared helpers for the project-analysis tests.

Fixture *trees* live under ``tests/lint/project/fixtures/<name>/repro``
— whole mini-packages rather than single files, because every pass
under test is interprocedural.  As with the syntactic fixtures, lines
tagged ``# violation <RULE>`` are the exact set a pass must flag, and
the ``fixtures`` path segment keeps the tree-wide clean walk away.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.exec.fingerprint import SourceIndex
from repro.lint.project import ProjectGraph, get_pass

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def fixture_index(name: str) -> SourceIndex:
    return SourceIndex(FIXTURES / name / "repro")


def fixture_graph(name: str) -> ProjectGraph:
    return ProjectGraph(fixture_index(name))


def run_pass(pass_id: str, graph: ProjectGraph):
    return sorted(get_pass(pass_id).run(graph))


def expected_sites(name: str, rule_id: str) -> set[tuple[str, int]]:
    """``(path-suffix, line)`` pairs tagged ``# violation <rule>``."""
    out: set[tuple[str, int]] = set()
    root = FIXTURES / name / "repro"
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(FIXTURES / name).as_posix()
        for i, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1):
            if f"# violation {rule_id}" in line:
                out.add((rel, i))
    return out


def found_sites(findings, name: str) -> set[tuple[str, int]]:
    """Findings as ``(path-suffix, line)`` pairs matching the tags."""
    marker = f"/fixtures/{name}/"
    out = set()
    for f in findings:
        path = f.path.replace("\\", "/")
        assert marker in path, f"finding outside fixture tree: {f.path}"
        out.add((path.split(marker, 1)[1], f.line))
    return out


def write_tree(root: Path, files: dict[str, str]) -> SourceIndex:
    """Materialise a ``repro`` package from relpath->source in tests."""
    pkg = root / "repro"
    for rel, src in files.items():
        path = pkg / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(src), encoding="utf-8")
    for directory in [pkg] + [p for p in pkg.rglob("*") if p.is_dir()]:
        init = directory / "__init__.py"
        if not init.exists():
            init.write_text("", encoding="utf-8")
    return SourceIndex(pkg)
