"""PRF001: hot-path checked-schedule rule."""

from tests.lint.helpers import assert_rule_matches_fixture, lint_snippet


def test_prf001_flagged_and_suppressible():
    assert_rule_matches_fixture("PRF001", "prf001_checked_schedule.py",
                                package="atm")


def test_prf001_scoped_to_cell_and_packet_subpackages():
    source = ("class C:\n"
              "    def kick(self):\n"
              "        self.sim.schedule(0.0, print)\n")
    # the same call is fine outside repro/atm and repro/tcp
    assert [f for f in lint_snippet(source, "src/repro/sim/mod.py")
            if f.rule_id == "PRF001"] == []
    assert [f for f in
            lint_snippet(source, "src/repro/analysis/mod.py")
            if f.rule_id == "PRF001"] == []
    for pkg in ("atm", "tcp"):
        findings = [f for f in
                    lint_snippet(source, f"src/repro/{pkg}/mod.py")
                    if f.rule_id == "PRF001"]
        assert [f.line for f in findings] == [3]


def test_prf001_ignores_variable_delays():
    source = ("class C:\n"
              "    def kick(self, delay):\n"
              "        self.sim.schedule(delay, print)\n"
              "        self.sim.schedule(self.propagation, print)\n")
    assert [f for f in lint_snippet(source, "src/repro/atm/mod.py")
            if f.rule_id == "PRF001"] == []


def test_prf001_false_is_not_zero():
    # bool is an int subclass; False == 0 must not trip the zero match
    source = ("class C:\n"
              "    def kick(self):\n"
              "        self.sim.schedule(False, print)\n")
    assert [f for f in lint_snippet(source, "src/repro/atm/mod.py")
            if f.rule_id == "PRF001"] == []
