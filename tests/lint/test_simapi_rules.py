"""FLT001/SIM001/SIM002: sim-API rules."""

from tests.lint.helpers import assert_rule_matches_fixture, lint_snippet


def test_flt001_float_equality_flagged_and_suppressible():
    assert_rule_matches_fixture("FLT001", "flt001_float_equality.py")


def test_flt001_ordering_comparisons_are_fine():
    source = ("def f(a: float, b: float) -> bool:\n"
              "    return a < b\n")
    assert [f for f in lint_snippet(source) if f.rule_id == "FLT001"] == []


def test_flt001_is_comparison_with_sentinel_is_fine():
    source = ("_NONE = object()\n"
              "def f(a: float) -> bool:\n"
              "    return a is _NONE\n")
    assert [f for f in lint_snippet(source) if f.rule_id == "FLT001"] == []


def test_sim001_run_in_callback_flagged_and_suppressible():
    assert_rule_matches_fixture("SIM001", "sim001_reentrant_run.py")


def test_sim001_run_outside_callbacks_is_fine():
    source = ("def main(sim):\n"
              "    sim.schedule(1.0, print)\n"
              "    sim.run(until=5.0)\n")
    assert [f for f in lint_snippet(source) if f.rule_id == "SIM001"] == []


def test_sim001_periodic_timer_callbacks_are_tracked():
    source = ("class C:\n"
              "    def go(self):\n"
              "        PeriodicTimer(self.sim, 0.1, self._tick)\n"
              "        self.sim.schedule(1.0, print)\n"
              "    def _tick(self, timer):\n"
              "        self.sim.run(until=2.0)\n")
    findings = [f for f in lint_snippet(source) if f.rule_id == "SIM001"]
    assert [f.line for f in findings] == [6]


def test_sim002_discarded_schedule_flagged_and_suppressible():
    assert_rule_matches_fixture("SIM002", "sim002_discarded_schedule.py")


def test_sim002_silent_in_classes_that_never_cancel():
    source = ("class C:\n"
              "    def go(self, sim):\n"
              "        sim.schedule(1.0, print)\n")
    assert [f for f in lint_snippet(source) if f.rule_id == "SIM002"] == []
