"""File collection: overlap dedupe (the double-lint regression)."""

import os

from repro.lint.runner import iter_python_files, lint_paths


def _tree(tmp_path):
    pkg = tmp_path / "src" / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "a.py").write_text("import random\nrandom.random()\n")
    (pkg / "b.py").write_text("x = 1\n")
    return tmp_path


def test_overlapping_dir_and_file_are_linted_once(tmp_path):
    root = _tree(tmp_path)
    src = str(root / "src")
    a = str(root / "src" / "repro" / "sim" / "a.py")
    files = list(iter_python_files([src, a]))
    assert len(files) == len(set(map(os.path.realpath, files)))
    assert sorted(map(os.path.basename, files)) == ["a.py", "b.py"]


def test_nested_dirs_and_duplicate_args_dedupe(tmp_path):
    root = _tree(tmp_path)
    src = str(root / "src")
    sim = str(root / "src" / "repro" / "sim")
    files = list(iter_python_files([src, sim, src]))
    assert sorted(map(os.path.basename, files)) == ["a.py", "b.py"]


def test_first_spelling_wins_for_reported_paths(tmp_path):
    root = _tree(tmp_path)
    a = str(root / "src" / "repro" / "sim" / "a.py")
    files = list(iter_python_files([a, str(root / "src")]))
    assert files[0] == a    # explicit spelling kept, walk skips it


def test_findings_are_not_duplicated_for_overlapping_paths(tmp_path):
    root = _tree(tmp_path)
    a = str(root / "src" / "repro" / "sim" / "a.py")
    findings_once, checked_once = lint_paths([a], select=["DET001"])
    findings_twice, checked_twice = lint_paths(
        [str(root / "src"), a], select=["DET001"])
    assert len(findings_once) == 1
    assert len(findings_twice) == 1
    assert checked_twice == 2   # a.py counted once, plus b.py


def test_symlinked_alias_is_linted_once(tmp_path):
    root = _tree(tmp_path)
    alias = root / "alias"
    try:
        os.symlink(root / "src", alias)
    except OSError:
        return                   # filesystem without symlink support
    files = list(iter_python_files([str(root / "src"), str(alias)]))
    assert sorted(map(os.path.basename, files)) == ["a.py", "b.py"]
