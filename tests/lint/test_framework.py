"""Framework-level tests: registry, pragmas, reporters, CLI exit codes."""

import json

from repro.lint import all_rules, lint_source, main
from repro.lint.findings import PARSE_ERROR_ID
from repro.lint.pragmas import Suppressions

from tests.lint.helpers import fixture_path, lint_snippet

RULE_IDS = {"DET001", "DET002", "DET003", "DET004",
            "UNT001", "UNT002", "FLT001", "SIM001", "SIM002",
            "PRF001", "OBS001", "OBS002", "EXE001", "SRV001", "FLD001",
            "FZZ001"}

VIOLATION = "import random\nx = random.uniform(0.0, 1.0)\n"


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

def test_all_expected_rules_registered():
    ids = {rule.id for rule in all_rules()}
    assert ids == RULE_IDS
    assert len(ids) >= 6


def test_every_rule_documents_itself():
    for rule in all_rules():
        assert rule.summary, f"{rule.id} has no summary"
        assert rule.__doc__, f"{rule.id} has no docstring"
        assert rule.id in rule.__doc__, f"{rule.id} docstring lacks its id"


# ----------------------------------------------------------------------
# pragmas
# ----------------------------------------------------------------------

def test_file_level_pragma_suppresses_everywhere():
    source = "# lint: disable-file=DET001\n" + VIOLATION
    assert [f for f in lint_snippet(source) if f.rule_id == "DET001"] == []


def test_disable_all_wildcard():
    source = "import random\nx = random.uniform(0.0, 1.0)  # lint: disable=all\n"
    assert lint_snippet(source) == []


def test_pragma_inside_string_literal_is_ignored():
    suppressions = Suppressions('text = "# lint: disable=DET001"\n')
    assert suppressions.line_ids == {}
    assert suppressions.file_ids == set()


def test_pragma_only_covers_its_own_line():
    source = ("import random\n"
              "a = random.random()  # lint: disable=DET001\n"
              "b = random.random()\n")
    findings = [f for f in lint_snippet(source) if f.rule_id == "DET001"]
    assert [f.line for f in findings] == [3]


def test_pragma_with_justification_suffix_parses():
    source = ("import random\n"
              "a = random.random()  # lint: disable=DET001 -- fixture\n")
    assert [f for f in lint_snippet(source) if f.rule_id == "DET001"] == []


# ----------------------------------------------------------------------
# runner details
# ----------------------------------------------------------------------

def test_syntax_error_is_reported_not_raised():
    findings = lint_source("def broken(:\n", "src/repro/sim/broken.py")
    assert [f.rule_id for f in findings] == [PARSE_ERROR_ID]


def test_file_context_locates_repro_package():
    import ast

    from repro.lint.context import FileContext

    ctx = FileContext("src/repro/sim/engine.py", "", ast.parse(""))
    assert ctx.package_parts == ("sim", "engine.py")
    assert ctx.in_repro and ctx.in_subpackage("sim")
    assert not ctx.in_subpackage("core")

    fixture = FileContext("tests/lint/fixtures/repro/sim/x.py", "",
                          ast.parse(""))
    assert fixture.package_parts == ("sim", "x.py")

    outside = FileContext("tests/helpers.py", "", ast.parse(""))
    assert outside.package_parts is None and not outside.in_repro


def test_rules_scope_by_virtual_path():
    # identical source, different location: only the repro copy is hit
    inside = lint_snippet(VIOLATION, path="src/repro/atm/x.py")
    outside = lint_snippet(VIOLATION, path="benchmarks/x.py")
    assert any(f.rule_id == "DET001" for f in inside)
    assert not any(f.rule_id == "DET001" for f in outside)


# ----------------------------------------------------------------------
# CLI and reporters
# ----------------------------------------------------------------------

def test_cli_nonzero_on_fixture_violation(capsys):
    path = str(fixture_path("det001_global_random.py"))
    assert main([path, "--select", "DET001"]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out
    assert "det001_global_random.py" in out


def test_cli_zero_on_clean_file(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert main([str(clean)]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_missing_path_is_a_usage_error(capsys):
    assert main(["definitely/not/a/path.py"]) == 2
    capsys.readouterr()


def test_cli_unknown_rule_id_is_a_usage_error(capsys):
    # a typo'd --select must not silently run zero rules and "pass"
    assert main(["src", "--select", "DET999"]) == 2
    assert "DET999" in capsys.readouterr().out
    assert main(["src", "--ignore", "nope1"]) == 2
    capsys.readouterr()


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULE_IDS:
        assert rule_id in out


def test_json_reporter_schema(capsys):
    path = str(fixture_path("det002_wall_clock.py"))
    assert main([path, "--select", "DET002", "--format", "json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["version"] == 1
    assert report["files_checked"] == 1
    assert isinstance(report["findings"], list) and report["findings"]
    for entry in report["findings"]:
        assert set(entry) == {"path", "line", "col", "rule", "severity",
                              "message"}
        assert entry["rule"] == "DET002"
        assert entry["severity"] in ("error", "warning")
        assert isinstance(entry["line"], int) and entry["line"] >= 1


def test_ignore_flag_drops_rule(capsys):
    path = str(fixture_path("det001_global_random.py"))
    assert main([path, "--ignore",
                 "DET001,DET002,DET003,DET004,FLT001"]) == 0
    capsys.readouterr()
