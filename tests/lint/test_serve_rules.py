"""SRV001 — blocking calls inside coroutines in repro.serve."""

from tests.lint.helpers import assert_rule_matches_fixture, lint_snippet


def test_srv001_fixture():
    assert_rule_matches_fixture("SRV001", "srv001_blocking.py",
                                package="serve")


def test_srv001_only_applies_to_serve():
    source = (
        "import time\n"
        "async def f():\n"
        "    time.sleep(1)\n")
    in_serve = [f for f in lint_snippet(
        source, "src/repro/serve/x.py") if f.rule_id == "SRV001"]
    elsewhere = [f for f in lint_snippet(
        source, "src/repro/exec/x.py") if f.rule_id == "SRV001"]
    assert len(in_serve) == 1
    assert elsewhere == []


def test_srv001_message_names_the_bridge():
    source = (
        "from repro.exec.pool import run_tasks\n"
        "async def f(specs):\n"
        "    return run_tasks(specs)\n")
    findings = [f for f in lint_snippet(
        source, "src/repro/serve/x.py") if f.rule_id == "SRV001"]
    assert len(findings) == 1
    assert "run_in_executor" in findings[0].message


def test_srv001_ignores_references_and_sync_scopes():
    source = (
        "import asyncio, time\n"
        "from repro.exec.pool import run_tasks\n"
        "def sync(specs):\n"
        "    time.sleep(0.1)\n"
        "    return run_tasks(specs)\n"
        "async def f(specs):\n"
        "    loop = asyncio.get_running_loop()\n"
        "    return await loop.run_in_executor(None, run_tasks, specs)\n")
    findings = [f for f in lint_snippet(
        source, "src/repro/serve/x.py") if f.rule_id == "SRV001"]
    assert findings == []
