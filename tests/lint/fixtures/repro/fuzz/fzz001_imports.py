"""FZZ001 fixture: global randomness/clock imports in a core fuzz
module.

Flagged lines are tagged; the injected-handle imports and the pragma'd
twin must stay silent.
"""

import random  # violation
import time  # violation
import datetime  # violation
import uuid  # violation
import secrets  # violation
from random import randint  # violation
from random import Random, shuffle  # violation
from time import perf_counter  # violation
from datetime import datetime as DateTime  # violation

# the sanctioned injection surfaces
from random import Random
from repro.sim import RngStreams
from repro.sim.rng import RngStreams
from repro.exec.spec import TaskSpec, derive_seed

import time  # lint: disable=FZZ001
