"""UNT002 fixture: millisecond-looking literals handed to the scheduler."""


def arm(sim, fn):
    sim.schedule(5000, fn)  # violation
    sim.schedule_at(time=2500.0, fn=fn)  # violation


def arm_suppressed(sim, fn):
    sim.schedule(5000, fn)  # lint: disable=UNT002


def arm_ok(sim, fn):
    sim.schedule(0.005, fn)
    sim.schedule_at(2.5, fn)
