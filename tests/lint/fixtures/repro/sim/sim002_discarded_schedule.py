"""SIM002 fixture: discarded schedule() handle in a cancelling class."""


class Pacer:
    def __init__(self, sim):
        self.sim = sim
        self._pending = None

    def start(self):
        self.sim.schedule(1.0, self.fire)  # violation

    def start_suppressed(self):
        self.sim.schedule(1.0, self.fire)  # lint: disable=SIM002

    def arm_ok(self):
        self._pending = self.sim.schedule(1.0, self.fire)

    def pause(self):
        if self._pending is not None:
            self._pending.cancel()


class FireAndForget:
    """No cancel() anywhere, so discarding the handle is fine."""

    def __init__(self, sim):
        self.sim = sim

    def start(self):
        self.sim.schedule(1.0, print)
