"""DET003 fixture: set iteration in a file that schedules events."""


def broadcast(sim, sessions):
    for vc in set(sessions):  # violation
        sim.schedule(0.001, vc.notify)
    delays = [d for d in {0.1, 0.2}]  # violation
    return delays


def broadcast_suppressed(sim, sessions):
    for vc in set(sessions):  # lint: disable=DET003
        sim.schedule(0.001, vc.notify)


def broadcast_ok(sim, sessions):
    for vc in sorted(set(sessions)):
        sim.schedule(0.001, vc.notify)
