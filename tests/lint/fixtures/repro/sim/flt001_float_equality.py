"""FLT001 fixture: brittle float equality."""


class Meter:
    interval: float = 0.1

    def __init__(self):
        self.acr: float = 8.5

    def literal_compare(self, value) -> bool:
        return value == 0.5  # violation

    def annotated_arg(self, rate: float) -> bool:
        return rate != self.acr  # violation

    def attr_compare(self) -> bool:
        return self.interval == self.acr  # violation

    def suppressed(self, value) -> bool:
        return value == 0.5  # lint: disable=FLT001

    def int_compare_ok(self, count: int) -> bool:
        return count == 0
