"""DET001 fixture: draws from the process-global random generator.

Never imported — only parsed by the lint tests.  Lines carrying the
violation marker comment must be flagged; pragma'd twins must not be.
"""

import random

from random import uniform  # violation


def jitter() -> float:
    return random.random()  # violation


def jitter_suppressed() -> float:
    return random.random()  # lint: disable=DET001


def seeded_ok() -> float:
    return random.Random(42).random()
