"""UNT001 fixture: arithmetic across different unit suffixes."""


def bad_sum(delay_ms: float, interval_s: float) -> float:
    return delay_ms + interval_s  # violation


def bad_compare(rate_mbps: float, backlog_cells: float) -> bool:
    return rate_mbps > backlog_cells  # violation


def bad_sum_suppressed(delay_ms: float, interval_s: float) -> float:
    return delay_ms + interval_s  # lint: disable=UNT001


def same_unit_ok(start_s: float, stop_s: float) -> float:
    return stop_s - start_s


def converted_ok(delay_ms: float, interval_s: float) -> float:
    delay_s = delay_ms / 1e3
    return delay_s + interval_s
