"""DET004 fixture: function-local imports of nondeterminism sources."""


def make_stream(seed: int):
    import random  # violation
    return random.Random(seed)


def read_clock():
    from time import time  # violation
    return time()


def make_stream_suppressed(seed: int):
    import random  # lint: disable=DET004
    return random.Random(seed)


def harmless_local_import():
    import math
    return math.pi
