"""SIM001 fixture: Simulator.run() called from inside an event callback."""


class Nested:
    def __init__(self, sim):
        self.sim = sim

    def start(self):
        self.sim.schedule(1.0, self._on_fire)
        self.sim.schedule(2.0, self._on_fire_suppressed)

    def _on_fire(self):
        self.sim.run(until=5.0)  # violation

    def _on_fire_suppressed(self):
        self.sim.run(until=5.0)  # lint: disable=SIM001

    def stop_ok(self):
        self.sim.stop()
