"""DET002 fixture: wall-clock and environment reads."""

import os
import time


def stamp() -> float:
    return time.time()  # violation


def configured() -> str:
    return os.environ["REPRO_MODE"]  # violation


def getenv_read() -> str:
    return os.getenv("REPRO_MODE", "")  # violation


def stamp_suppressed() -> float:
    return time.time()  # lint: disable=DET002


def sim_time_ok(sim) -> float:
    return sim.now
