"""SRV001 fixture: blocking calls inside coroutines in repro.serve.

Flagged lines are tagged; the sync twins, the executor-bridge pattern,
and the pragma'd twin must stay silent.
"""

import asyncio
import subprocess
import time

from repro.exec.pool import run_tasks


def sync_helper(specs):
    # sync scope: blocking is this function's business
    time.sleep(0.01)
    subprocess.run(["true"], check=False)
    return run_tasks(specs, jobs=1)


async def bad_sleep():
    time.sleep(0.5)  # violation
    await asyncio.sleep(0)


async def bad_subprocess():
    subprocess.run(["true"], check=False)  # violation
    subprocess.check_output(["true"])  # violation


async def bad_direct_run(specs):
    return run_tasks(specs, jobs=1)  # violation


async def good_bridge(specs):
    loop = asyncio.get_running_loop()
    # passed by reference — the executor thread does the blocking
    return await loop.run_in_executor(None, sync_helper, specs)


async def good_async_sleep():
    await asyncio.sleep(0.5)


async def suppressed():
    time.sleep(0.0)  # lint: disable=SRV001


async def outer(specs):
    def shipped_to_executor():
        # nested *sync* function: its body is not coroutine code
        return run_tasks(specs, jobs=1)

    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(None, shipped_to_executor)
