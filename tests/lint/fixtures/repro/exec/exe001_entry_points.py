"""EXE001 fixture: registering non-importable task entry points.

Flagged lines are tagged; the module-level registrations and the
pragma'd twin must stay silent.
"""

from functools import partial

from repro.exec.registry import register_scenario


def good_entry(duration: float = 0.1):
    return duration


def good_param_deps(params):
    return ()


# module-level function: fine, by name and through a keyword
register_scenario("ok.positional", good_entry, kind="atm")
register_scenario("ok.keyword", fn=good_entry, kind="atm",
                  param_deps=good_param_deps)

# a lambda can never be re-imported inside a worker
register_scenario("bad.lambda", lambda: None, kind="atm")  # violation

# call results (partials included) are not importable by name
register_scenario("bad.partial", partial(good_entry, 0.2),  # violation
                  kind="atm")

# callable keyword arguments are checked too
register_scenario("bad.param_deps", good_entry, kind="atm",
                  param_deps=lambda params: ())  # violation


def _register_closure():
    def closure_entry(duration: float = 0.1):
        return duration

    # nested function: resolvable in-process, unreachable from a worker
    register_scenario("bad.closure", closure_entry, kind="atm")  # violation
    # suppressed twin: silent, with a recorded justification
    register_scenario(  # test fixture exercising the pragma path
        "ok.suppressed", closure_entry,  # lint: disable=EXE001
        kind="atm")
