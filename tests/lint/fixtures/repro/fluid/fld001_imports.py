"""FLD001 fixture: event-kernel/packet imports in a core fluid module.

Flagged lines are tagged; the allowed scalar imports and the pragma'd
twin must stay silent.
"""

from repro.sim import Simulator  # violation
from repro.sim.engine import Simulator as Engine  # violation
from repro.sim.timers import PeriodicTimer  # violation
from repro.atm import AtmNetwork  # violation
from repro.atm.port import OutputPort  # violation
from repro.tcp import TcpNetwork  # violation
import repro.atm  # violation

# the sanctioned scalar surfaces
from repro.atm.params import AbrParams
from repro.sim.probe import Probe
from repro.sim.rng import RngStreams
from repro.sim.units import CELL_BITS
from repro.core.macr import MacrFilter

from repro.sim import units  # lint: disable=FLD001
