"""PRF001 fixture: checked schedule() with per-cell delays on hot paths."""


class Transmitter:
    def __init__(self, sim, cell_time):
        self.sim = sim
        self.cell_time = cell_time

    def kick(self):
        self.sim.schedule(self.cell_time, self.fire)  # violation

    def kick_zero_int(self):
        self.sim.schedule(0, self.fire)  # violation

    def kick_zero_float(self):
        self.sim.schedule(0.0, self.fire)  # violation

    def kick_local_name(self):
        cell_time = self.cell_time
        self.sim.schedule(cell_time, self.fire)  # violation

    def kick_suppressed(self):
        self.sim.schedule(self.cell_time, self.fire)  # lint: disable=PRF001

    def kick_fast_is_fine(self):
        self.sim.schedule_fast(self.cell_time, self.fire)

    def kick_other_delay_is_fine(self):
        self.sim.schedule(self.propagation, self.fire)

    def kick_at_is_fine(self):
        # schedule_at takes an absolute time, not a per-cell delay
        self.sim.schedule_at(self.cell_time, self.fire)

    def fire(self):
        pass
