"""OBS002 fixture: monitor feeds with and without the ``is None`` gate."""


class Port:
    def __init__(self, sim, monitor):
        self.sim = sim
        self._monitor = monitor
        self._watch = monitor

    def bare_attribute(self, record):
        self._monitor.observe(record)  # violation

    def bare_local(self, record):
        monitor = self._monitor
        monitor.observe(record)  # violation

    def bare_watch(self, record):
        watch = self._watch
        watch.observe(record)  # violation

    def gated_on_other_name(self, record):
        other = self._monitor
        if other is not None:
            self._monitor.observe(record)  # violation

    def wrong_branch(self, record):
        monitor = self._monitor
        if monitor is None:
            monitor.observe(record)  # violation

    def suppressed(self, record):
        self._monitor.observe(record)  # lint: disable=OBS002

    def gated_local(self, record):
        monitor = self._monitor
        if monitor is not None:
            monitor.observe(record)

    def gated_attribute(self, record):
        if self._monitor is not None:
            self._monitor.observe(record)

    def gated_watch(self, record):
        watch = self._watch
        if watch is not None:
            watch.observe(record)

    def gated_outer_scope(self, records):
        monitor = self._monitor
        if monitor is not None:
            for record in records:
                monitor.observe(record)

    def other_observe_is_fine(self, series):
        # only monitor-named receivers are monitor feeds
        series.observe(1.0)
