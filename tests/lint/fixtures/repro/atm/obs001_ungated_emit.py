"""OBS001 fixture: trace emits with and without the ``is None`` gate."""


class Port:
    def __init__(self, sim, tracer):
        self.sim = sim
        self._tracer = tracer

    def bare_attribute(self, cell):
        self._tracer.emit(self.sim.now, "port.drop", "p", vc=cell.vc)  # violation

    def bare_local(self, cell):
        tracer = self._tracer
        tracer.emit(self.sim.now, "port.drop", "p", vc=cell.vc)  # violation

    def gated_on_other_name(self, cell):
        other = self._tracer
        if other is not None:
            self._tracer.emit(self.sim.now, "port.drop", "p")  # violation

    def wrong_branch(self, cell):
        tracer = self._tracer
        if tracer is None:
            tracer.emit(self.sim.now, "port.drop", "p")  # violation

    def suppressed(self, cell):
        self._tracer.emit(self.sim.now, "port.drop", "p")  # lint: disable=OBS001

    def gated_local(self, cell):
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(self.sim.now, "port.enqueue", "p", vc=cell.vc)

    def gated_attribute(self, cell):
        if self._tracer is not None:
            self._tracer.emit(self.sim.now, "port.enqueue", "p")

    def gated_compound(self, cell):
        tracer = self._tracer
        if tracer is not None and tracer.enabled("port"):
            tracer.emit(self.sim.now, "port.enqueue", "p")

    def gated_else_branch(self, cell):
        tracer = self._tracer
        if tracer is None:
            pass
        else:
            tracer.emit(self.sim.now, "port.enqueue", "p")

    def gated_outer_scope(self, cells):
        tracer = self._tracer
        if tracer is not None:
            for cell in cells:
                tracer.emit(self.sim.now, "port.enqueue", "p", vc=cell.vc)

    def other_emit_is_fine(self, bus):
        # only tracer-named receivers are trace-bus emits
        bus.emit("something")
