"""Reporter output contracts: text, JSON schema stability, SARIF."""

import json

from repro.lint.findings import Finding, Severity
from repro.lint.reporters import (JSON_SCHEMA_VERSION, render_json,
                                  render_sarif, render_text)


def _finding(**overrides):
    base = dict(path="src/repro/sim/engine.py", line=10, col=5,
                rule_id="DET001", severity=Severity.ERROR,
                message="call to the global random.* generator")
    base.update(overrides)
    return Finding(**base)


def test_text_report_empty_and_nonempty():
    assert render_text([], 7) == "7 files clean"
    assert render_text([], 1) == "1 file clean"
    out = render_text([_finding()], 3)
    assert "DET001" in out and out.endswith("1 finding in 3 files")


def test_json_schema_is_stable_for_empty_findings():
    report = json.loads(render_json([], 12))
    assert report == {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": 12,
        "findings": [],
    }


def test_json_includes_optional_fields_only_when_set():
    plain, rich = json.loads(render_json(
        [_finding(),
         _finding(line=20, end_line=24, symbol="repro.sim.engine.run")],
        2))["findings"]
    assert "end_line" not in plain and "symbol" not in plain
    assert rich["end_line"] == 24
    assert rich["symbol"] == "repro.sim.engine.run"
    assert set(plain) == {"path", "line", "col", "rule", "severity",
                          "message"}


def test_sarif_empty_report_is_valid_shell():
    report = json.loads(render_sarif([]))
    assert report["version"] == "2.1.0"
    run = report["runs"][0]
    assert run["results"] == []
    assert run["tool"]["driver"]["name"] == "repro-lint"


def test_sarif_results_reference_declared_rules():
    findings = [
        _finding(),
        _finding(rule_id="CONC001", severity=Severity.ERROR, line=3,
                 end_line=9, symbol="repro.serve.state.PENDING"),
    ]
    report = json.loads(render_sarif(
        findings, rule_meta={"DET001": "global random",
                             "CONC001": "cross-domain state"}))
    run = report["runs"][0]
    rules = run["tool"]["driver"]["rules"]
    ids = [r["id"] for r in rules]
    assert ids == sorted(ids)
    for result in run["results"]:
        assert rules[result["ruleIndex"]]["id"] == result["ruleId"]
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1
    conc = next(r for r in run["results"] if r["ruleId"] == "CONC001")
    assert conc["locations"][0]["physicalLocation"]["region"][
        "endLine"] == 9
    assert conc["locations"][0]["logicalLocations"][0][
        "fullyQualifiedName"] == "repro.serve.state.PENDING"
    assert conc["level"] == "error"


def test_sarif_includes_rules_missing_from_meta():
    report = json.loads(render_sarif([_finding(rule_id="UNI001")]))
    assert [r["id"] for r in
            report["runs"][0]["tool"]["driver"]["rules"]] == ["UNI001"]
