"""FLD001 — the fluid tier must stay rate-only (no kernel, no cells)."""

from tests.lint.helpers import assert_rule_matches_fixture, lint_snippet


def test_fld001_fixture():
    assert_rule_matches_fixture("FLD001", "fld001_imports.py",
                                package="fluid")


def test_fld001_only_applies_to_core_fluid_modules():
    source = "from repro.sim import Simulator\n"
    in_fluid = [f for f in lint_snippet(
        source, "src/repro/fluid/stepper.py") if f.rule_id == "FLD001"]
    elsewhere = [f for f in lint_snippet(
        source, "src/repro/exec/worker.py") if f.rule_id == "FLD001"]
    assert len(in_fluid) == 1
    assert elsewhere == []


def test_fld001_exempts_bridge_and_driver_modules():
    source = ("from repro.atm import AtmNetwork\n"
              "from repro.sim import PeriodicTimer\n")
    for stem in ("hybrid", "cli", "validate", "bench"):
        findings = [f for f in lint_snippet(
            source, f"src/repro/fluid/{stem}.py")
            if f.rule_id == "FLD001"]
        assert findings == [], stem


def test_fld001_allows_params_and_scalar_sim_modules():
    source = ("from repro.atm.params import AbrParams, PAPER_PARAMS\n"
              "from repro.sim.probe import Probe\n"
              "from repro.sim.rng import RngStreams\n"
              "from repro.sim.units import CELL_BITS\n"
              "from repro.core.macr import MacrFilter\n")
    findings = [f for f in lint_snippet(
        source, "src/repro/fluid/model.py") if f.rule_id == "FLD001"]
    assert findings == []


def test_fld001_message_names_the_module():
    source = "from repro.atm.port import OutputPort\n"
    findings = [f for f in lint_snippet(
        source, "src/repro/fluid/model.py") if f.rule_id == "FLD001"]
    assert len(findings) == 1
    assert "repro.atm.port" in findings[0].message


def test_shipped_fluid_package_is_fld001_clean():
    from pathlib import Path

    from repro.lint import lint_paths

    package = (Path(__file__).resolve().parents[2]
               / "src" / "repro" / "fluid")
    findings, files = lint_paths([str(package)], select=["FLD001"])
    assert files >= 7
    assert findings == []
