"""OBS001: ungated trace-emit rule."""

from tests.lint.helpers import assert_rule_matches_fixture, lint_snippet


def test_obs001_flagged_and_suppressible():
    assert_rule_matches_fixture("OBS001", "obs001_ungated_emit.py",
                                package="atm")


def test_obs001_scoped_to_hot_subpackages():
    source = ("class C:\n"
              "    def f(self):\n"
              "        self._tracer.emit(0.0, 'k', 'c')\n")
    # the obs package itself (and analysis code) may call emit freely
    for path in ("src/repro/obs/mod.py", "src/repro/analysis/mod.py"):
        assert [f for f in lint_snippet(source, path)
                if f.rule_id == "OBS001"] == []
    for pkg in ("atm", "tcp", "sim", "core"):
        findings = [f for f in
                    lint_snippet(source, f"src/repro/{pkg}/mod.py")
                    if f.rule_id == "OBS001"]
        assert [f.line for f in findings] == [3]


def test_obs001_accepts_conditional_expression_gate():
    source = ("class C:\n"
              "    def f(self, tracer):\n"
              "        x = (tracer.emit(0.0, 'k', 'c')\n"
              "             if tracer is not None else None)\n")
    assert [f for f in lint_snippet(source, "src/repro/sim/mod.py")
            if f.rule_id == "OBS001"] == []


def test_obs001_guard_must_dominate_within_function():
    # a gate in one function does not cover an emit in another
    source = ("class C:\n"
              "    def f(self, tracer):\n"
              "        if tracer is not None:\n"
              "            def g():\n"
              "                tracer.emit(0.0, 'k', 'c')\n"
              "            g()\n")
    findings = [f for f in lint_snippet(source, "src/repro/sim/mod.py")
                if f.rule_id == "OBS001"]
    assert [f.line for f in findings] == [5]


def test_obs002_flagged_and_suppressible():
    assert_rule_matches_fixture("OBS002", "obs002_ungated_observe.py",
                                package="atm")


def test_obs002_scoped_to_simulation_subpackages():
    source = ("class C:\n"
              "    def f(self, record):\n"
              "        self._monitor.observe(record)\n")
    # the obs package itself folds records freely (it IS the monitor)
    for path in ("src/repro/obs/mod.py", "src/repro/analysis/mod.py"):
        assert [f for f in lint_snippet(source, path)
                if f.rule_id == "OBS002"] == []
    for pkg in ("atm", "tcp", "sim", "core", "fluid"):
        findings = [f for f in
                    lint_snippet(source, f"src/repro/{pkg}/mod.py")
                    if f.rule_id == "OBS002"]
        assert [f.line for f in findings] == [3]


def test_obs002_gate_accepted():
    source = ("class C:\n"
              "    def f(self, record):\n"
              "        watch = self._watch\n"
              "        if watch is not None:\n"
              "            watch.observe(record)\n")
    assert [f for f in lint_snippet(source, "src/repro/fluid/mod.py")
            if f.rule_id == "OBS002"] == []
