"""Shared helpers for the lint-framework tests.

Fixture modules live under ``tests/lint/fixtures/repro/sim/`` — inside a
``repro`` directory so path-scoped rules apply, inside ``fixtures`` so
the tree-wide lint walk skips them.  Lines tagged ``# violation`` are
the exact set a rule must flag; pragma'd twins must stay silent.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import lint_paths, lint_source

FIXTURES = Path(__file__).resolve().parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def fixture_path(name: str, package: str = "sim") -> Path:
    """Path of a fixture module; ``package`` picks the ``repro/``
    subpackage it pretends to live in (path-scoped rules care)."""
    return FIXTURES / "repro" / package / name


def lint_fixture(name: str, rule_id: str, package: str = "sim"):
    """Findings of one rule on one fixture file."""
    findings, files = lint_paths([str(fixture_path(name, package))],
                                 select=[rule_id])
    assert files == 1
    return findings


def expected_lines(name: str, package: str = "sim") -> list[int]:
    """Line numbers tagged ``# violation`` in a fixture."""
    text = fixture_path(name, package).read_text(encoding="utf-8")
    return [i for i, line in enumerate(text.splitlines(), start=1)
            if "# violation" in line]


def assert_rule_matches_fixture(rule_id: str, name: str,
                                package: str = "sim") -> None:
    """The rule flags exactly the tagged lines (suppressed twins silent)."""
    findings = lint_fixture(name, rule_id, package)
    assert [f.rule_id for f in findings] == [rule_id] * len(findings)
    assert [f.line for f in findings] == expected_lines(name, package)


def lint_snippet(source: str, path: str = "src/repro/sim/snippet.py"):
    """Lint a source string at a virtual path (for inline tests)."""
    return lint_source(source, path)
