"""EXE001: importable-entry-point rule."""

from tests.lint.helpers import assert_rule_matches_fixture, lint_snippet


def test_exe001_flagged_and_suppressible():
    assert_rule_matches_fixture("EXE001", "exe001_entry_points.py",
                                package="exec")


def test_exe001_module_level_function_is_clean():
    source = ("def entry(duration=0.1):\n"
              "    return duration\n"
              "\n"
              "register_scenario('atm.x', entry, kind='atm')\n")
    assert [f for f in lint_snippet(source, "src/repro/exec/mod.py")
            if f.rule_id == "EXE001"] == []


def test_exe001_flags_lambda_and_call_results():
    source = ("register_scenario('a', lambda: None, kind='atm')\n"
              "register_scenario('b', partial(f, 1), kind='atm')\n")
    findings = [f for f in lint_snippet(source, "src/repro/exec/mod.py")
                if f.rule_id == "EXE001"]
    assert [f.line for f in findings] == [1, 2]


def test_exe001_flags_param_deps_keyword():
    source = ("def entry():\n"
              "    pass\n"
              "\n"
              "register_scenario('a', entry, kind='atm',\n"
              "                  param_deps=lambda p: ())\n")
    findings = [f for f in lint_snippet(source, "src/repro/exec/mod.py")
                if f.rule_id == "EXE001"]
    assert [f.line for f in findings] == [5]


def test_exe001_applies_outside_the_exec_package_too():
    # registration can happen anywhere in repro (tests, plugins)
    source = "register_scenario('a', lambda: None, kind='atm')\n"
    findings = [f for f in
                lint_snippet(source, "src/repro/scenarios/mod.py")
                if f.rule_id == "EXE001"]
    assert [f.line for f in findings] == [1]
