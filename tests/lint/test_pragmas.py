"""Suppression pragmas: scoping, usage tracking, dead detection."""

from repro.lint.pragmas import Suppressions


def test_line_pragma_suppresses_only_its_line_and_rule():
    supp = Suppressions(
        "x = 1\n"
        "y = rng()  # lint: disable=DET001\n"
        "z = rng()\n")
    assert supp.is_suppressed("DET001", 2)
    assert not supp.is_suppressed("DET001", 3)
    assert not supp.is_suppressed("DET002", 2)


def test_file_pragma_covers_every_line():
    supp = Suppressions("# lint: disable-file=UNT001\nx = a_ms + b_s\n")
    assert supp.is_suppressed("UNT001", 1)
    assert supp.is_suppressed("unt001", 99)


def test_disable_all_wildcard():
    supp = Suppressions("bad()  # lint: disable=all\n")
    assert supp.is_suppressed("DET001", 1)
    assert supp.is_suppressed("CONC003", 1)


def test_pragma_inside_string_literal_is_ignored():
    supp = Suppressions('s = "# lint: disable=DET001"\nr = rng()\n')
    assert not supp.is_suppressed("DET001", 1)
    assert supp.unused() == []


def test_unused_reports_pragmas_that_never_fired():
    supp = Suppressions(
        "# lint: disable-file=FLT001\n"
        "a()  # lint: disable=DET001,DET002\n")
    assert supp.is_suppressed("DET001", 2)
    assert supp.unused() == [(0, "flt001"), (2, "det002")]


def test_unused_is_empty_once_everything_fires():
    supp = Suppressions("a()  # lint: disable=DET001\n")
    supp.is_suppressed("DET001", 1)
    assert supp.unused() == []


def test_multiple_ids_and_justification_text_parse():
    supp = Suppressions(
        "a()  # lint: disable=FLT001,SIM002 -- exact sentinel compare\n")
    assert supp.is_suppressed("FLT001", 1)
    assert supp.is_suppressed("SIM002", 1)
