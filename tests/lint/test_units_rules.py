"""UNT001/UNT002: unit-safety rules."""

from tests.lint.helpers import assert_rule_matches_fixture, lint_snippet


def test_unt001_mixed_units_flagged_and_suppressible():
    assert_rule_matches_fixture("UNT001", "unt001_mixed_units.py")


def test_unt001_multiplication_is_a_conversion_not_a_mix():
    # rate * time is how conversions are written; only +/- and
    # comparisons across units are suspect
    source = ("def f(rate_mbps: float, window_s: float) -> float:\n"
              "    return rate_mbps * window_s\n")
    assert [f for f in lint_snippet(source) if f.rule_id == "UNT001"] == []


def test_unt001_suffix_matching_is_longest_first():
    # `_mbps` must not be parsed as "ends in _s"
    source = ("def f(a_mbps: float, b_mbps: float) -> float:\n"
              "    return a_mbps + b_mbps\n")
    assert [f for f in lint_snippet(source) if f.rule_id == "UNT001"] == []


def test_unt002_ms_literal_flagged_and_suppressible():
    assert_rule_matches_fixture("UNT002", "unt002_ms_literal.py")


def test_unt002_applies_outside_repro_too():
    source = "sim.schedule(30000, cb)\n"
    findings = [f for f in lint_snippet(source, path="tests/test_x.py")
                if f.rule_id == "UNT002"]
    assert [f.line for f in findings] == [1]
