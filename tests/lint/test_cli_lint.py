"""The lint CLI surface: two tiers, formats, baseline, cache flags."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint.cli import run

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = str(REPO_ROOT / "src")
BASELINE = str(REPO_ROOT / "lint-baseline.json")
PACKAGE_ROOT = str(REPO_ROOT / "src" / "repro")


@pytest.fixture(autouse=True)
def _run_in_repo_root(monkeypatch):
    """Project paths (and the default baseline) resolve from the repo
    root, which is where the lint gate runs."""
    monkeypatch.chdir(REPO_ROOT)


def test_list_rules_shows_both_tiers(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "DET001" in out and "CONC001" in out and "UNI002" in out
    assert "project passes" in out


def test_unknown_rule_id_is_a_usage_error(capsys):
    assert main(["lint", "--select", "NOPE01", SRC]) == 2
    assert "unknown rule id" in capsys.readouterr().out


def test_project_run_is_clean_with_baseline(capsys):
    assert main(["lint", "--project", "--package-root", PACKAGE_ROOT,
                 "--baseline", BASELINE, SRC]) == 0
    out = capsys.readouterr().out
    assert "modules analyzed" in out
    assert "1 baselined" in out


def test_project_select_runs_only_project_passes(capsys):
    code = run([SRC], project=True, package_root=PACKAGE_ROOT,
               baseline_path=BASELINE, select=["CONC002"])
    assert code == 0


def test_missing_explicit_baseline_is_a_usage_error(capsys):
    assert main(["lint", "--project", "--package-root", PACKAGE_ROOT,
                 "--baseline", "does-not-exist.json", SRC]) == 2
    assert "no such baseline" in capsys.readouterr().out


def test_sarif_output_file(tmp_path, capsys):
    out_file = tmp_path / "report.sarif"
    assert main(["lint", "--project", "--package-root", PACKAGE_ROOT,
                 "--baseline", BASELINE, "--format", "sarif",
                 "--output", str(out_file), SRC]) == 0
    report = json.loads(out_file.read_text())
    assert report["version"] == "2.1.0"
    rule_ids = {r["id"] for r in
                report["runs"][0]["tool"]["driver"]["rules"]}
    assert {"DET001", "CONC001", "DTT001", "UNI001"} <= rule_ids


def test_cache_dir_round_trip(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    args = ["lint", "--project", "--package-root", PACKAGE_ROOT,
            "--baseline", BASELINE, "--cache-dir", cache, SRC]
    assert main(args) == 0
    capsys.readouterr()
    assert main(args) == 0
    assert "(cached)" in capsys.readouterr().out


def test_report_unused_pragmas_rejects_partial_runs(capsys):
    assert main(["lint", "--report-unused-pragmas",
                 "--select", "DET001", SRC]) == 2
    assert "full rule set" in capsys.readouterr().out


def test_report_unused_pragmas_flags_a_dead_pragma(tmp_path, capsys,
                                                   monkeypatch):
    monkeypatch.chdir(tmp_path)
    pkg = tmp_path / "src" / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "mod.py").write_text("x = 1  # lint: disable=DET001\n")
    assert main(["lint", "--report-unused-pragmas",
                 str(tmp_path / "src")]) == 1
    out = capsys.readouterr().out
    assert "LNT001" in out and "det001" in out


def test_changed_against_head_is_clean(capsys):
    # the worktree may legitimately differ from HEAD mid-development;
    # the gate here is only that the scoped run works end to end
    code = main(["lint", "--changed", "HEAD", "--project",
                 "--package-root", PACKAGE_ROOT,
                 "--baseline", BASELINE, SRC])
    assert code in (0, 1)
    assert "project:" in capsys.readouterr().out


def test_changed_keeps_the_walk_exclusions(capsys):
    # --changed generates the file list itself, so it must honor the
    # same exclusions as the tree walk: a PR touching the deliberately
    # broken lint fixtures must not fail the diff-scoped gate on them
    from repro.lint.cli import _in_excluded_dir

    assert _in_excluded_dir("tests/lint/fixtures/repro/sim/bad.py")
    assert _in_excluded_dir("tests/lint/project/fixtures/det/repro/x.py")
    assert not _in_excluded_dir("src/repro/sim/engine.py")
    assert not _in_excluded_dir("tests/lint/test_cli_lint.py")


def test_changed_against_bad_ref_is_a_usage_error(capsys):
    assert main(["lint", "--changed", "no-such-ref-xyz", SRC]) == 2
    assert "--changed" in capsys.readouterr().out
