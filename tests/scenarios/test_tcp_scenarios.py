"""Tests for the TCP scenario builders (the Section-4.3 configurations)."""

import pytest

from repro.scenarios import (drop_tail_policy, many_flows, rtt_fairness,
                             selective_discard_policy, selective_efci_policy,
                             selective_quench_policy, selective_red_policy,
                             tcp_parking_lot)


def test_rtt_fairness_drop_tail_biased():
    run = rtt_fairness(drop_tail_policy(), duration=20.0)
    rates = run.goodputs()
    assert max(rates.values()) / min(rates.values()) > 2.5
    assert run.jain() < 0.9


def test_rtt_fairness_selective_discard_fair():
    run = rtt_fairness(selective_discard_policy(), duration=20.0)
    rates = run.goodputs()
    assert max(rates.values()) / min(rates.values()) < 1.6
    assert run.jain() > 0.95
    assert run.total_goodput() > 5.0


def test_selective_quench_controls_without_heavy_loss():
    run = rtt_fairness(selective_quench_policy(), duration=20.0)
    trunk = run.bottleneck
    assert trunk.policy.quenches_sent > 0
    assert run.total_goodput() > 4.0


def test_selective_efci_scenario():
    run = rtt_fairness(selective_efci_policy(), duration=20.0)
    assert run.bottleneck.policy.marked > 0
    assert run.total_goodput() > 4.0


def test_selective_red_scenario():
    run = rtt_fairness(selective_red_policy(), duration=20.0)
    assert run.total_goodput() > 4.0


def test_parking_lot_drop_tail_beats_down_long_flow():
    run = tcp_parking_lot(drop_tail_policy(), hops=3, duration=20.0)
    rates = run.goodputs()
    crosses = [rates[f"cross{i}"] for i in range(3)]
    assert rates["long"] < min(crosses)


def test_parking_lot_selective_discard_protects_long_flow():
    dt = tcp_parking_lot(drop_tail_policy(), hops=3, duration=20.0)
    sd = tcp_parking_lot(selective_discard_policy(), hops=3, duration=20.0)
    assert sd.goodputs()["long"] > dt.goodputs()["long"]
    assert sd.jain() > dt.jain()


def test_many_flows_split_evenly():
    run = many_flows(selective_discard_policy(), n_flows=4, duration=20.0)
    assert run.jain() > 0.9


def test_builders_validate():
    with pytest.raises(ValueError):
        tcp_parking_lot(drop_tail_policy(), hops=1)
    with pytest.raises(ValueError):
        many_flows(drop_tail_policy(), n_flows=0)


def test_run_false_defers():
    run = many_flows(drop_tail_policy(), n_flows=2, duration=1.0, run=False)
    assert run.net.sim.now == 0.0
    run.net.run(until=1.0)
    assert run.net.sim.now == pytest.approx(1.0)
