"""Tests for the scenario run handles (AtmRun / TcpRun helpers)."""

import pytest

from repro.core import PhantomAlgorithm
from repro.scenarios import (drop_tail_policy, many_flows, staggered_start,
                             two_way)


@pytest.fixture(scope="module")
def atm_run():
    return staggered_start(PhantomAlgorithm, n_sessions=2, duration=0.15)


@pytest.fixture(scope="module")
def tcp_run():
    return many_flows(drop_tail_policy(), n_flows=2, duration=5.0)


def test_atm_steady_window(atm_run):
    start, end = atm_run.steady_window()
    assert end == atm_run.duration
    assert start == pytest.approx(0.75 * atm_run.duration)
    start_half, _ = atm_run.steady_window(fraction=0.5)
    assert start_half == pytest.approx(0.5 * atm_run.duration)


def test_atm_steady_rates_keys(atm_run):
    rates = atm_run.steady_rates()
    assert set(rates) == {"s0", "s1"}
    assert all(r > 0 for r in rates.values())


def test_atm_jain_and_utilization(atm_run):
    assert 0.9 < atm_run.jain() <= 1.0
    assert 0.5 < atm_run.utilization() < 1.0


def test_atm_queue_stats_keys(atm_run):
    stats = atm_run.queue_stats()
    assert set(stats) == {"max", "mean", "final"}
    assert stats["max"] >= stats["mean"] >= 0


def test_atm_probes_accessible(atm_run):
    assert atm_run.macr_probe is not None
    assert len(atm_run.macr_probe) > 10
    assert len(atm_run.queue_probe) > 0


def test_tcp_goodputs_and_total(tcp_run):
    rates = tcp_run.goodputs()
    assert set(rates) == {"f0", "f1"}
    assert tcp_run.total_goodput() == pytest.approx(sum(rates.values()))


def test_tcp_jain(tcp_run):
    assert 0.5 < tcp_run.jain() <= 1.0


def test_tcp_queue_stats(tcp_run):
    stats = tcp_run.queue_stats()
    assert stats["max"] >= stats["mean"]


def test_tcp_macr_probe_absent_for_droptail(tcp_run):
    assert tcp_run.macr_probe is None


def test_two_way_builder_names_and_symmetry():
    run = two_way(drop_tail_policy(), flows_per_direction=1, duration=5.0)
    rates = run.goodputs()
    assert set(rates) == {"east0", "west0"}
    assert min(rates.values()) > 0
    with pytest.raises(ValueError):
        two_way(drop_tail_policy(), flows_per_direction=0)
