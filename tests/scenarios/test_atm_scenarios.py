"""Tests for the ATM scenario builders (run with Phantom)."""

import pytest

from repro.core import PhantomAlgorithm, phantom_equilibrium_rate
from repro.scenarios import (on_off, parking_lot, rtt_spread,
                             staggered_start, transient)


def test_staggered_start_structure_and_convergence():
    run = staggered_start(PhantomAlgorithm, n_sessions=2, duration=0.2)
    assert set(run.net.sessions) == {"s0", "s1"}
    rates = run.steady_rates()
    expected = phantom_equilibrium_rate(150.0, 2, 5.0) * 31 / 32
    for rate in rates.values():
        assert rate == pytest.approx(expected, rel=0.15)
    assert run.jain() > 0.99


def test_staggered_start_macr_and_queue_probes():
    run = staggered_start(PhantomAlgorithm, n_sessions=2, duration=0.15)
    assert run.macr_probe is not None
    assert len(run.macr_probe) > 100
    assert run.queue_stats()["max"] < 2000


def test_staggered_start_validation():
    with pytest.raises(ValueError):
        staggered_start(PhantomAlgorithm, n_sessions=0)


def test_rtt_spread_rates_equal_despite_rtt():
    run = rtt_spread(PhantomAlgorithm,
                     access_delays=(1e-5, 1e-3), duration=0.3)
    rates = run.steady_rates()
    values = list(rates.values())
    assert values[0] == pytest.approx(values[1], rel=0.1)
    assert run.jain() > 0.99


def test_on_off_deterministic_and_random():
    run = on_off(PhantomAlgorithm, greedy=1, bursty=1, duration=0.3,
                 seed=None)
    greedy_rate = run.steady_rates(fraction=0.5)["greedy0"]
    assert greedy_rate > 30.0  # greedy session keeps flowing

    run2 = on_off(PhantomAlgorithm, greedy=1, bursty=1, duration=0.3,
                  seed=3)
    assert run2.net.sessions["onoff0"].destination.data_received > 0


def test_on_off_reproducible_by_seed():
    a = on_off(PhantomAlgorithm, duration=0.2, seed=5)
    b = on_off(PhantomAlgorithm, duration=0.2, seed=5)
    assert a.steady_rates() == b.steady_rates()


def test_parking_lot_long_session_not_beaten_down():
    run = parking_lot(PhantomAlgorithm, hops=3, duration=0.3)
    rates = run.steady_rates()
    # at the first trunk: long + cross0 -> each should get ~equal share;
    # long must not be squeezed below cross sessions' rates
    assert rates["long"] == pytest.approx(rates["cross0"], rel=0.2)
    assert run.net.sessions["long"].route == ["S1", "S2", "S3", "S4"]


def test_parking_lot_validation():
    with pytest.raises(ValueError):
        parking_lot(PhantomAlgorithm, hops=1)


def test_transient_visitor_joins_and_leaves():
    run = transient(PhantomAlgorithm, duration=0.4, join_at=0.1,
                    leave_at=0.25)
    base = run.net.sessions["base"]
    # during the shared period both run near the 2-session share
    shared = base.acr_probe.value_at(0.24)
    assert shared == pytest.approx(
        phantom_equilibrium_rate(150.0, 2, 5.0), rel=0.25)
    # after the departure the survivor reclaims the single-session share
    final = base.acr_probe.value_at(0.39)
    assert final == pytest.approx(
        phantom_equilibrium_rate(150.0, 1, 5.0), rel=0.15)


def test_transient_validation():
    with pytest.raises(ValueError):
        transient(PhantomAlgorithm, join_at=0.3, leave_at=0.2, duration=0.4)


def test_run_false_defers_execution():
    run = staggered_start(PhantomAlgorithm, duration=0.1, run=False)
    assert run.net.sim.now == 0.0
    run.net.run(until=run.duration)
    assert run.net.sim.now == pytest.approx(0.1)
