"""Tier-1 gate: the tree must stay lint-clean.

``repro.lint`` encodes the repository's determinism, unit-safety, and
sim-API invariants (docs/LINTING.md); this test makes every violation a
test failure, so refactors cannot silently reintroduce the bug classes
the linter closes.
"""

from pathlib import Path

from repro.lint import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_src_and_tests_are_lint_clean():
    findings, files_checked = lint_paths(
        [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")])
    assert files_checked > 100, "lint walk found suspiciously few files"
    rendered = "\n".join(f.render() for f in findings)
    assert not findings, f"lint findings in tree:\n{rendered}"


def test_fixture_directory_is_excluded_from_the_walk():
    # the deliberately-broken fixtures live under tests/lint/fixtures;
    # the tree walk must skip them (explicit paths still lint them)
    findings, _ = lint_paths([str(REPO_ROOT / "tests" / "lint")])
    assert findings == []


def test_project_tier_is_clean_against_the_baseline():
    """The whole-program passes must report nothing new.

    Accepted findings live in ``lint-baseline.json`` with per-entry
    justifications; anything outside it fails here, and so does a
    baseline entry that no longer matches (the baseline may only
    shrink toward zero).
    """
    from repro.exec.fingerprint import SourceIndex
    from repro.lint.project import analyze_project, load_baseline

    baseline = load_baseline(str(REPO_ROOT / "lint-baseline.json"))
    report = analyze_project(SourceIndex(REPO_ROOT / "src" / "repro"),
                             baseline=baseline)
    assert report.modules_analyzed > 50, \
        "project walk found suspiciously few modules"
    rendered = "\n".join(f.render() for f in report.findings)
    assert not report.findings, f"project findings in tree:\n{rendered}"
    stale = "\n".join(e.render() for e in report.stale_baseline)
    assert not report.stale_baseline, f"stale baseline entries:\n{stale}"


def test_no_dead_suppression_pragmas_in_tree():
    # run both tiers with the full rule set, then every pragma in the
    # tree must have fired at least once
    from repro.exec.fingerprint import SourceIndex
    from repro.lint.project import analyze_project

    registry: dict = {}
    lint_paths([str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")],
               suppression_registry=registry)
    analyze_project(SourceIndex(REPO_ROOT / "src" / "repro"),
                    suppression_registry=registry)
    dead = {path: supp.unused() for path, supp in registry.items()
            if supp.unused()}
    assert not dead, f"dead suppression pragmas: {dead}"
