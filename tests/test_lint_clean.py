"""Tier-1 gate: the tree must stay lint-clean.

``repro.lint`` encodes the repository's determinism, unit-safety, and
sim-API invariants (docs/LINTING.md); this test makes every violation a
test failure, so refactors cannot silently reintroduce the bug classes
the linter closes.
"""

from pathlib import Path

from repro.lint import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_src_and_tests_are_lint_clean():
    findings, files_checked = lint_paths(
        [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")])
    assert files_checked > 100, "lint walk found suspiciously few files"
    rendered = "\n".join(f.render() for f in findings)
    assert not findings, f"lint findings in tree:\n{rendered}"


def test_fixture_directory_is_excluded_from_the_walk():
    # the deliberately-broken fixtures live under tests/lint/fixtures;
    # the tree walk must skip them (explicit paths still lint them)
    findings, _ = lint_paths([str(REPO_ROOT / "tests" / "lint")])
    assert findings == []
