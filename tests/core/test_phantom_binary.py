"""Tests for the binary (CI/NI marking) Phantom variant."""

import pytest

from repro.atm import AtmNetwork, OutputPort, RMCell, RMDirection
from repro.core import (BinaryPhantomAlgorithm, PhantomParams,
                        phantom_equilibrium_rate)
from repro.sim import Simulator


class NullSink:
    def receive(self, cell):
        pass


def make_alg(sim, use_ni=False, macr=10.0):
    alg = BinaryPhantomAlgorithm(PhantomParams(macr_init=macr),
                                 use_ni=use_ni)
    OutputPort(sim, "p", rate_mbps=150.0, sink=NullSink(), algorithm=alg)
    return alg


def backward(ccr, er=150.0):
    return RMCell(vc="A", direction=RMDirection.BACKWARD, ccr=ccr, er=er)


def test_ci_set_only_above_grant():
    sim = Simulator()
    alg = make_alg(sim)  # grant = 5 * 10 = 50
    fast, slow = backward(ccr=60.0), backward(ccr=40.0)
    alg.on_backward_rm(fast)
    alg.on_backward_rm(slow)
    assert fast.ci is True
    assert slow.ci is False


def test_er_field_untouched():
    sim = Simulator()
    alg = make_alg(sim)
    rm = backward(ccr=60.0)
    alg.on_backward_rm(rm)
    assert rm.er == 150.0


def test_ni_band_below_ci_threshold():
    sim = Simulator()
    alg = make_alg(sim, use_ni=True)  # grant 50, NI band (40, 50]
    in_band = backward(ccr=45.0)
    below = backward(ccr=39.0)
    above = backward(ccr=55.0)
    for rm in (in_band, below, above):
        alg.on_backward_rm(rm)
    assert in_band.ni is True and in_band.ci is False
    assert below.ni is False and below.ci is False
    assert above.ci is True and above.ni is False


def test_ni_disabled_by_default():
    sim = Simulator()
    alg = make_alg(sim)
    rm = backward(ccr=45.0)
    alg.on_backward_rm(rm)
    assert rm.ni is False


def test_invalid_ni_fraction_rejected():
    with pytest.raises(ValueError):
        BinaryPhantomAlgorithm(ni_fraction=0.0)
    with pytest.raises(ValueError):
        BinaryPhantomAlgorithm(ni_fraction=1.5)


def binary_network(use_ni, air_nrm=42.5):
    # binary feedback has no ER cap, so the additive step *is* the
    # saw-tooth amplitude; deployments pair binary mode with a small AIR
    from repro.atm import AbrParams
    params = AbrParams(air_nrm=air_nrm)
    net = AtmNetwork(
        algorithm_factory=lambda: BinaryPhantomAlgorithm(
            PhantomParams(), use_ni=use_ni))
    net.add_switch("S1")
    net.add_switch("S2")
    net.connect("S1", "S2")
    a = net.add_session("A", route=["S1", "S2"], params=params)
    b = net.add_session("B", route=["S1", "S2"], start=0.030, params=params)
    return net, a, b


@pytest.mark.parametrize("use_ni", [False, True])
def test_binary_variant_converges_fairly(use_ni):
    net, a, b = binary_network(use_ni)
    net.run(until=0.4)
    expected = phantom_equilibrium_rate(150.0, 2, 5.0)
    rate_a = a.rate_probe.window(0.25, 0.4).mean()
    rate_b = b.rate_probe.window(0.25, 0.4).mean()
    # binary feedback saw-tooths around the grant; looser tolerance
    assert rate_a == pytest.approx(rate_b, rel=0.25)
    assert rate_a + rate_b == pytest.approx(2 * expected * 31 / 32, rel=0.3)


def test_ni_reduces_sawtooth_amplitude():
    """The NI band freezes sources near the grant, damping oscillation."""

    def amplitude(use_ni):
        net, a, _b = binary_network(use_ni, air_nrm=2.0)
        net.run(until=0.4)
        ticks = [0.25 + i * 1e-3 for i in range(150)]
        values = a.acr_probe.resample(ticks)
        return max(values) - min(values)

    assert amplitude(True) <= amplitude(False)
