"""Unit tests for the residual-bandwidth meter."""

import pytest

from repro.core import ResidualMeter
from repro.sim import units


def test_idle_interval_full_residual():
    meter = ResidualMeter(capacity_mbps=150.0, interval=1e-3)
    assert meter.close_interval() == pytest.approx(150.0)
    assert meter.intervals == 1


def test_residual_decreases_with_offered_load():
    meter = ResidualMeter(capacity_mbps=150.0, interval=1e-3)
    # offer 50 Mb/s worth of cells in 1 ms
    cells = int(units.mbps_to_cells_per_sec(50.0) * 1e-3)
    meter.count(cells)
    residual = meter.close_interval()
    assert residual == pytest.approx(100.0, abs=0.5)


def test_overload_gives_negative_residual():
    meter = ResidualMeter(capacity_mbps=150.0, interval=1e-3)
    cells = int(units.mbps_to_cells_per_sec(300.0) * 1e-3)
    meter.count(cells)
    assert meter.close_interval() < -100.0


def test_counter_resets_each_interval():
    meter = ResidualMeter(capacity_mbps=150.0, interval=1e-3)
    meter.count(100)
    meter.close_interval()
    assert meter.cells_this_interval == 0
    assert meter.close_interval() == pytest.approx(150.0)


def test_offered_mbps_property():
    meter = ResidualMeter(capacity_mbps=150.0, interval=1.0)
    meter.count(int(units.mbps_to_cells_per_sec(42.0)))
    assert meter.offered_mbps == pytest.approx(42.0, abs=0.01)


@pytest.mark.parametrize("kwargs", [
    {"capacity_mbps": 0.0, "interval": 1e-3},
    {"capacity_mbps": -1.0, "interval": 1e-3},
    {"capacity_mbps": 150.0, "interval": 0.0},
])
def test_invalid_args_rejected(kwargs):
    with pytest.raises(ValueError):
        ResidualMeter(**kwargs)
