"""Unit tests for the MACR filter."""

import pytest

from repro.core import MacrFilter, PhantomParams


def run_filter(filt, samples):
    for s in samples:
        filt.update(s)
    return filt.macr


def test_converges_to_constant_residual():
    filt = MacrFilter(150.0, PhantomParams(macr_init=0.0))
    run_filter(filt, [30.0] * 400)
    assert filt.macr == pytest.approx(30.0, rel=0.01)


def test_initial_value_from_params():
    filt = MacrFilter(150.0, PhantomParams(macr_init=8.5))
    assert filt.macr == 8.5


def test_initial_value_clamped_to_capacity():
    filt = MacrFilter(10.0, PhantomParams(macr_init=50.0))
    assert filt.macr == 10.0


def test_decrease_faster_than_increase():
    params = PhantomParams(macr_init=50.0, use_deviation=False)
    up = MacrFilter(150.0, params)
    up.update(100.0)
    gain_up = (up.macr - 50.0) / 50.0

    down = MacrFilter(150.0, params)
    down.update(0.0)
    gain_down = (50.0 - down.macr) / 50.0
    assert gain_down > gain_up


def test_negative_residual_pushes_down_hard():
    filt = MacrFilter(150.0, PhantomParams(macr_init=50.0))
    filt.update(-150.0)
    # alpha_dec = 1/4 of err = -200 -> macr = 0 after clamp
    assert filt.macr == pytest.approx(0.0)


def test_macr_clamped_to_capacity():
    filt = MacrFilter(150.0, PhantomParams(macr_init=149.0,
                                           use_deviation=False))
    run_filter(filt, [1000.0] * 50)
    assert filt.macr == 150.0


def test_macr_never_negative():
    filt = MacrFilter(150.0, PhantomParams(macr_init=1.0))
    run_filter(filt, [-1000.0] * 10)
    assert filt.macr == 0.0


def test_deviation_deadband_holds_under_oscillation():
    """Steady-state oscillation of the residual must not drag MACR up.

    With a residual alternating 20 ± 15 around a MACR already at the mean,
    the deviation-damped filter should hold near 20 while the raw filter
    keeps chasing the peaks: the upward excursions are discounted by DEV.
    """
    samples = [5.0, 35.0] * 300

    damped = MacrFilter(150.0, PhantomParams(macr_init=20.0))
    raw = MacrFilter(150.0, PhantomParams(macr_init=20.0,
                                          use_deviation=False))
    for s in samples:
        damped.update(s)
        raw.update(s)

    # both stay in the oscillation band...
    assert 0.0 < damped.macr < 35.0
    # ...but the damped filter sits strictly lower (conservative)
    assert damped.macr < raw.macr


def test_deviation_decays_when_signal_stabilises():
    filt = MacrFilter(150.0, PhantomParams(macr_init=0.0))
    run_filter(filt, [5.0, 35.0] * 50)
    assert filt.dev > 1.0
    run_filter(filt, [20.0] * 400)
    assert filt.dev < 0.5
    assert filt.macr == pytest.approx(20.0, rel=0.05)


def test_state_is_two_scalars():
    filt = MacrFilter(150.0)
    state = filt.state_vars()
    assert set(state) == {"macr", "dev"}


def test_update_counter():
    filt = MacrFilter(150.0)
    run_filter(filt, [10.0] * 7)
    assert filt.updates == 7


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        MacrFilter(0.0)


@pytest.mark.parametrize("kwargs", [
    {"interval": 0.0},
    {"utilization_factor": 0.0},
    {"alpha_inc": 0.0},
    {"alpha_inc": 1.5},
    {"alpha_dec": -0.1},
    {"beta": 2.0},
    {"dev_margin": -1.0},
    {"macr_init": -5.0},
])
def test_invalid_params_rejected(kwargs):
    with pytest.raises(ValueError):
        PhantomParams(**kwargs)
