"""Unit and integration tests for the Phantom ER algorithm."""

import pytest

from repro.atm import AtmNetwork, Cell, OutputPort, RMCell, RMDirection
from repro.core import (PhantomAlgorithm, PhantomParams,
                        phantom_equilibrium_rate,
                        phantom_equilibrium_utilization)
from repro.sim import Simulator, units


class NullSink:
    def receive(self, cell):
        pass


def make_phantom_port(sim, params=None, rate=150.0):
    alg = PhantomAlgorithm(params or PhantomParams())
    port = OutputPort(sim, "p", rate_mbps=rate, sink=NullSink(),
                      algorithm=alg)
    return port, alg


# ----------------------------------------------------------------------
# closed forms
# ----------------------------------------------------------------------

def test_equilibrium_rate_closed_form():
    assert phantom_equilibrium_rate(150.0, 1, 5.0) == pytest.approx(125.0)
    assert phantom_equilibrium_rate(150.0, 2, 5.0) == pytest.approx(750 / 11)
    with pytest.raises(ValueError):
        phantom_equilibrium_rate(150.0, 0, 5.0)


def test_equilibrium_utilization_closed_form():
    assert phantom_equilibrium_utilization(1, 5.0) == pytest.approx(5 / 6)
    assert phantom_equilibrium_utilization(2, 5.0) == pytest.approx(10 / 11)
    # utilisation grows with n and with f
    assert (phantom_equilibrium_utilization(10, 5.0)
            > phantom_equilibrium_utilization(2, 5.0))
    assert (phantom_equilibrium_utilization(2, 20.0)
            > phantom_equilibrium_utilization(2, 5.0))


# ----------------------------------------------------------------------
# unit behaviour
# ----------------------------------------------------------------------

def test_idle_port_macr_climbs_to_capacity():
    sim = Simulator()
    _, alg = make_phantom_port(sim)
    sim.run(until=0.5)
    # residual = full capacity every interval; deviation decays; MACR -> C
    assert alg.macr == pytest.approx(150.0, rel=0.05)


def test_er_stamped_to_min_of_grant():
    sim = Simulator()
    _, alg = make_phantom_port(sim, params=PhantomParams(macr_init=10.0))
    rm = RMCell(vc="A", direction=RMDirection.BACKWARD, er=150.0)
    alg.on_backward_rm(rm)
    assert rm.er == pytest.approx(50.0)  # f=5 * macr=10

    # an already-lower ER is left alone
    rm_low = RMCell(vc="A", direction=RMDirection.BACKWARD, er=3.0)
    alg.on_backward_rm(rm_low)
    assert rm_low.er == 3.0


def test_arrivals_lower_macr():
    sim = Simulator()
    port, alg = make_phantom_port(sim)

    # saturate the port: one cell per cell-time
    ct = units.cell_time(150.0)

    def feed():
        port.receive(Cell(vc="A"))
        sim.schedule(ct, feed)

    sim.schedule(0.0, feed)
    sim.run(until=0.2)
    # offered load == capacity -> residual ~ 0 -> MACR -> ~0
    assert alg.macr < 2.0


def test_macr_probe_records_intervals():
    sim = Simulator()
    _, alg = make_phantom_port(sim, params=PhantomParams(interval=1e-3))
    sim.run(until=0.0105)
    # initial sample + one per interval
    assert len(alg.macr_probe) == 11
    assert alg.macr_probe.times[-1] == pytest.approx(0.01)


def test_state_is_constant_space():
    sim = Simulator()
    port, alg = make_phantom_port(sim)
    baseline = len(alg.state_vars())
    for i in range(500):
        port.receive(Cell(vc=f"session-{i}"))
        alg.on_backward_rm(RMCell(vc=f"session-{i}",
                                  direction=RMDirection.BACKWARD, er=150.0))
    assert len(alg.state_vars()) == baseline == 3


# ----------------------------------------------------------------------
# integration: the paper's core claims on a real network
# ----------------------------------------------------------------------

def two_session_network(**phantom_kwargs):
    params = PhantomParams(**phantom_kwargs)
    net = AtmNetwork(algorithm_factory=lambda: PhantomAlgorithm(params))
    net.add_switch("S1")
    net.add_switch("S2")
    net.connect("S1", "S2")
    a = net.add_session("A", route=["S1", "S2"])
    b = net.add_session("B", route=["S1", "S2"], start=0.030)
    return net, a, b


def test_two_sessions_converge_to_phantom_fair_share():
    net, a, b = two_session_network()
    net.run(until=0.3)
    expected = phantom_equilibrium_rate(150.0, 2, 5.0)
    # time-averaged ACR over the last 100 ms
    for session in (a, b):
        tail = session.acr_probe.window(0.2, 0.3)
        tail.record(0.3, session.source.acr)
        assert tail.time_average() == pytest.approx(expected, rel=0.15)


def test_two_sessions_get_equal_shares():
    net, a, b = two_session_network()
    net.run(until=0.3)
    rate_a = a.rate_probe.window(0.2, 0.3).mean()
    rate_b = b.rate_probe.window(0.2, 0.3).mean()
    assert rate_a == pytest.approx(rate_b, rel=0.1)


def test_first_session_alone_gets_single_session_share():
    net, a, b = two_session_network()
    net.run(until=0.025)  # before B starts
    expected = phantom_equilibrium_rate(150.0, 1, 5.0)  # 125 Mb/s
    assert a.source.acr == pytest.approx(expected, rel=0.2)


def test_queue_moderate_and_drains():
    net, a, b = two_session_network()
    net.run(until=0.3)
    trunk = net.trunk("S1", "S2")
    queue = trunk.queue_probe
    # transient spike allowed, but the queue must come back down and the
    # buffer never grows without bound (paper: "moderate queue length")
    assert queue.max() < 2000
    assert queue.window(0.25, 0.3).mean() < 100


def test_utilization_near_equilibrium():
    net, a, b = two_session_network()
    net.run(until=0.3)
    trunk = net.trunk("S1", "S2")
    # departures in [0.2, 0.3]: compare against 10/11 of line rate
    # (count all cells through the trunk in the window via the meter)
    window_cells = (a.rate_probe.window(0.2, 0.3).mean()
                    + b.rate_probe.window(0.2, 0.3).mean())
    expected_util = phantom_equilibrium_utilization(2, 5.0)
    goodput_fraction = 31 / 32  # RM overhead
    assert window_cells == pytest.approx(
        150.0 * expected_util * goodput_fraction, rel=0.15)
