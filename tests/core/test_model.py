"""Tests for the analytic Phantom loop model, including model-vs-
simulation agreement."""

import math

import pytest

from repro.atm import AtmNetwork
from repro.core import (PhantomAlgorithm, PhantomLoopModel, PhantomParams,
                        phantom_equilibrium_rate)


def test_model_converges_to_closed_form():
    model = PhantomLoopModel(150.0)
    for n in (1, 2, 3):
        trace = model.run(n_sessions=n, intervals=500)
        expected = model.equilibrium_rate(n)
        for rate in trace.final_rates():
            assert rate == pytest.approx(expected, rel=0.02)


def test_model_equilibrium_matches_module_closed_form():
    model = PhantomLoopModel(150.0)
    assert model.equilibrium_rate(2) == pytest.approx(
        phantom_equilibrium_rate(150.0, 2, 5.0))


def test_model_weighted_equilibrium():
    model = PhantomLoopModel(150.0, weights=[1.0, 2.0])
    trace = model.run(n_sessions=2, intervals=500)
    light, heavy = trace.final_rates()
    assert heavy == pytest.approx(2 * light, rel=0.02)
    # Δ = C − 3fΔ => light = f·150/16
    assert light == pytest.approx(5 * 150 / 16, rel=0.05)


def test_model_settle_time_finite_and_fast():
    model = PhantomLoopModel(150.0)
    trace = model.run(n_sessions=2, intervals=300)
    settle = trace.settle_time(tolerance=0.1)
    assert settle < 0.05  # tens of intervals at 1 ms


def test_stability_predicate():
    model = PhantomLoopModel(150.0)
    # alpha_inc = 1/16: gain 11/16 at n=2 (stable), 41/16 at n=8 (not)
    assert model.is_stable(2)
    assert not model.is_stable(8)


def test_stability_boundary_tracks_alpha():
    gentle = PhantomLoopModel(
        150.0, phantom=PhantomParams(alpha_inc=1 / 64, alpha_dec=1 / 64))
    assert gentle.is_stable(8)
    assert gentle.is_stable(20)


def test_unstable_configuration_misses_closed_form():
    """Past the bound the model limit-cycles below the equilibrium —
    the same bias benchmark E19 measures in full simulation."""
    model = PhantomLoopModel(
        150.0, phantom=PhantomParams(utilization_factor=20.0))
    trace = model.run(n_sessions=2, intervals=1000)
    expected = model.equilibrium_rate(2)
    mean_rate = sum(trace.final_rates()) / 2
    tail = [sum(r) for r in trace.rates[-200:]]
    # oscillation persists...
    assert max(tail) - min(tail) > 1.0
    # ...and the time-average misses the fixed point from below
    assert sum(tail) / len(tail) / 2 < expected


def test_model_agrees_with_simulation():
    """Interval-level model vs the full cell-level simulator (2 greedy
    sessions): equilibria within 5%, both settle within 60 ms."""
    model = PhantomLoopModel(150.0)
    trace = model.run(n_sessions=2, intervals=250)

    net = AtmNetwork(algorithm_factory=PhantomAlgorithm)
    net.add_switch("S1")
    net.add_switch("S2")
    net.connect("S1", "S2")
    a = net.add_session("A", route=["S1", "S2"])
    net.add_session("B", route=["S1", "S2"])
    net.run(until=0.25)

    assert a.source.acr == pytest.approx(trace.final_rates()[0], rel=0.05)
    assert trace.settle_time(0.1) < 0.06


def test_model_validation():
    model = PhantomLoopModel(150.0)
    with pytest.raises(ValueError):
        PhantomLoopModel(0.0)
    with pytest.raises(ValueError):
        model.run(n_sessions=0, intervals=10)
    with pytest.raises(ValueError):
        model.run(n_sessions=1, intervals=0)
    with pytest.raises(ValueError):
        model.run(n_sessions=2, intervals=10, start_rates=[1.0])
    with pytest.raises(ValueError):
        PhantomLoopModel(150.0, weights=[1.0]).run(2, 10)


def test_settle_time_inf_when_oscillating():
    model = PhantomLoopModel(
        150.0, phantom=PhantomParams(utilization_factor=20.0,
                                     use_deviation=False))
    trace = model.run(n_sessions=2, intervals=400)
    assert math.isinf(trace.settle_time(tolerance=0.01))
