"""Unit tests for the max-min solvers."""

import pytest

from repro.core import max_min_allocation, phantom_allocation


def test_single_link_equal_split():
    rates = max_min_allocation({"l": 100.0},
                               {"a": ["l"], "b": ["l"], "c": ["l"], "d": ["l"]})
    assert all(r == pytest.approx(25.0) for r in rates.values())


def test_classic_parking_lot():
    # textbook example [BG87]: long session crosses both links
    capacities = {"l1": 100.0, "l2": 100.0}
    routes = {"long": ["l1", "l2"], "s1": ["l1"], "s2": ["l2"]}
    rates = max_min_allocation(capacities, routes)
    assert rates["long"] == pytest.approx(50.0)
    assert rates["s1"] == pytest.approx(50.0)
    assert rates["s2"] == pytest.approx(50.0)


def test_unequal_bottlenecks():
    capacities = {"thin": 30.0, "fat": 300.0}
    routes = {"a": ["thin", "fat"], "b": ["fat"]}
    rates = max_min_allocation(capacities, routes)
    assert rates["a"] == pytest.approx(30.0)
    assert rates["b"] == pytest.approx(270.0)


def test_three_level_water_filling():
    capacities = {"l1": 10.0, "l2": 50.0, "l3": 200.0}
    routes = {
        "x": ["l1", "l2", "l3"],
        "y": ["l2", "l3"],
        "z": ["l3"],
    }
    rates = max_min_allocation(capacities, routes)
    assert rates["x"] == pytest.approx(10.0)
    assert rates["y"] == pytest.approx(40.0)
    assert rates["z"] == pytest.approx(150.0)


def test_phantom_single_link_matches_equilibrium():
    # n sessions on capacity C with factor f: each gets f*C/(n*f+1)
    rates = phantom_allocation({"l": 150.0},
                               {"a": ["l"], "b": ["l"]},
                               utilization_factor=5.0)
    expected = 5.0 * 150.0 / 11.0
    assert rates["a"] == pytest.approx(expected)
    assert rates["b"] == pytest.approx(expected)


def test_phantom_approaches_classic_as_f_grows():
    capacities = {"l1": 100.0, "l2": 100.0}
    routes = {"long": ["l1", "l2"], "s1": ["l1"], "s2": ["l2"]}
    classic = max_min_allocation(capacities, routes)
    near = phantom_allocation(capacities, routes, utilization_factor=1e6)
    for vc in routes:
        assert near[vc] == pytest.approx(classic[vc], rel=1e-4)


def test_phantom_leaves_headroom_on_every_link():
    capacities = {"l": 100.0}
    routes = {"a": ["l"]}
    rates = phantom_allocation(capacities, routes, utilization_factor=5.0)
    # one session: f*C/(f+1) = 500/6
    assert rates["a"] == pytest.approx(500.0 / 6.0)
    assert rates["a"] < 100.0


def test_allocation_never_oversubscribes_links():
    capacities = {"l1": 55.0, "l2": 100.0, "l3": 10.0}
    routes = {
        "a": ["l1", "l2"],
        "b": ["l2", "l3"],
        "c": ["l1"],
        "d": ["l2"],
        "e": ["l3", "l1"],
    }
    for weight in (0.0, 0.2, 1.0):
        rates = max_min_allocation(capacities, routes, phantom_weight=weight)
        for link, cap in capacities.items():
            load = sum(rates[s] for s, path in routes.items() if link in path)
            assert load <= cap + 1e-9


@pytest.mark.parametrize("capacities,routes", [
    ({}, {}),
    ({"l": -1.0}, {"a": ["l"]}),
    ({"l": 10.0}, {"a": []}),
    ({"l": 10.0}, {"a": ["nope"]}),
    ({"l": 10.0}, {"a": ["l", "l"]}),
])
def test_invalid_problems_rejected(capacities, routes):
    with pytest.raises(ValueError):
        max_min_allocation(capacities, routes)


def test_negative_phantom_weight_rejected():
    with pytest.raises(ValueError):
        max_min_allocation({"l": 1.0}, {"a": ["l"]}, phantom_weight=-1.0)
    with pytest.raises(ValueError):
        phantom_allocation({"l": 1.0}, {"a": ["l"]}, utilization_factor=0.0)


def test_no_sessions_returns_empty():
    assert max_min_allocation({"l": 10.0}, {}) == {}
