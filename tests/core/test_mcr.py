"""MCR (minimum cell rate) support: solver, RM loop, and Phantom grant."""

import pytest

from repro.atm import AbrParams, AtmNetwork, OutputPort, RMCell, RMDirection
from repro.core import (PhantomAlgorithm, PhantomParams, max_min_allocation,
                        phantom_equilibrium_rate)
from repro.sim import Simulator


# ----------------------------------------------------------------------
# solver with minimums
# ----------------------------------------------------------------------

def test_minimum_pins_session_above_fair_level():
    rates = max_min_allocation(
        {"l": 100.0}, {"a": ["l"], "b": ["l"], "c": ["l"]},
        minimums={"a": 50.0})
    assert rates["a"] == pytest.approx(50.0)
    assert rates["b"] == pytest.approx(25.0)
    assert rates["c"] == pytest.approx(25.0)


def test_minimum_below_fair_level_is_inactive():
    rates = max_min_allocation(
        {"l": 100.0}, {"a": ["l"], "b": ["l"]}, minimums={"a": 10.0})
    assert rates["a"] == pytest.approx(50.0)
    assert rates["b"] == pytest.approx(50.0)


def test_cascading_minimums():
    rates = max_min_allocation(
        {"l": 90.0}, {"a": ["l"], "b": ["l"], "c": ["l"]},
        minimums={"a": 60.0, "b": 20.0})
    assert rates["a"] == pytest.approx(60.0)
    assert rates["b"] == pytest.approx(20.0)
    assert rates["c"] == pytest.approx(10.0)


def test_minimums_validation():
    with pytest.raises(ValueError):
        max_min_allocation({"l": 10.0}, {"a": ["l"]},
                           minimums={"zzz": 1.0})
    with pytest.raises(ValueError):
        max_min_allocation({"l": 10.0}, {"a": ["l"]},
                           minimums={"a": -1.0})
    with pytest.raises(ValueError):
        max_min_allocation({"l": 10.0}, {"a": ["l"], "b": ["l"]},
                           minimums={"a": 6.0, "b": 6.0})  # infeasible


def test_minimums_with_phantom_weight():
    rates = max_min_allocation(
        {"l": 150.0}, {"a": ["l"], "b": ["l"]},
        phantom_weight=0.2, minimums={"a": 100.0})
    assert rates["a"] == pytest.approx(100.0)
    # b shares the remaining 50 with the phantom: 50/1.2
    assert rates["b"] == pytest.approx(50.0 / 1.2)


# ----------------------------------------------------------------------
# Phantom honours MCR in the ER stamp
# ----------------------------------------------------------------------

class NullSink:
    def receive(self, cell):
        pass


def test_er_never_stamped_below_mcr():
    sim = Simulator()
    alg = PhantomAlgorithm(PhantomParams(macr_init=1.0))
    OutputPort(sim, "p", rate_mbps=150.0, sink=NullSink(), algorithm=alg)
    rm = RMCell(vc="A", direction=RMDirection.BACKWARD, er=150.0, mcr=20.0)
    alg.on_backward_rm(rm)
    assert rm.er == pytest.approx(20.0)  # grant was 5, MCR wins


def test_mcr_session_protected_end_to_end():
    net = AtmNetwork(algorithm_factory=PhantomAlgorithm)
    net.add_switch("S1")
    net.add_switch("S2")
    net.connect("S1", "S2")
    # guaranteed session wants at least 100 of the 150
    vip = net.add_session("vip", route=["S1", "S2"],
                          params=AbrParams(mcr=100.0))
    best_effort = [net.add_session(f"be{i}", route=["S1", "S2"])
                   for i in range(3)]
    net.run(until=0.4)
    assert vip.source.acr >= 100.0 * 0.999
    # best-effort sessions share what the VIP leaves
    for session in best_effort:
        assert session.source.acr < 30.0
        assert session.source.acr > 3.0
    # and the trunk is not persistently overloaded
    assert net.trunk("S1", "S2").queue_probe.window(0.3, 0.4).mean() < 200


def test_forward_rm_carries_mcr():
    sim = Simulator()
    from tests.atm.test_endsystem import Collector, make_source
    src, sink = make_source(sim, params=AbrParams(mcr=7.0))
    src.start()
    sim.run(until=0.001)
    rm = sink.cells[0][1]
    assert rm.mcr == 7.0
