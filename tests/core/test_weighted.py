"""Weighted fairness: solver and weighted-Phantom end to end."""

import pytest

from repro.atm import AbrParams, AtmNetwork
from repro.core import PhantomAlgorithm, max_min_allocation


# ----------------------------------------------------------------------
# solver with weights
# ----------------------------------------------------------------------

def test_weighted_single_link_proportional_split():
    rates = max_min_allocation(
        {"l": 90.0}, {"a": ["l"], "b": ["l"]}, weights={"a": 2.0})
    assert rates["a"] == pytest.approx(60.0)
    assert rates["b"] == pytest.approx(30.0)


def test_unit_weights_match_unweighted():
    capacities = {"l1": 100.0, "l2": 100.0}
    routes = {"long": ["l1", "l2"], "s1": ["l1"], "s2": ["l2"]}
    plain = max_min_allocation(capacities, routes)
    weighted = max_min_allocation(capacities, routes,
                                  weights={s: 1.0 for s in routes})
    for s in routes:
        assert weighted[s] == pytest.approx(plain[s])


def test_weighted_parking_lot():
    capacities = {"l1": 100.0, "l2": 100.0}
    routes = {"long": ["l1", "l2"], "s1": ["l1"], "s2": ["l2"]}
    rates = max_min_allocation(capacities, routes, weights={"long": 3.0})
    # l1: level = 100/(3+1) = 25 -> long 75, s1 25; l2: s2 gets the rest
    assert rates["long"] == pytest.approx(75.0)
    assert rates["s1"] == pytest.approx(25.0)
    assert rates["s2"] == pytest.approx(25.0)


def test_weights_compose_with_phantom_weight():
    rates = max_min_allocation(
        {"l": 150.0}, {"a": ["l"], "b": ["l"]},
        phantom_weight=0.2, weights={"a": 2.0})
    # level = 150/(2+1+0.2) = 46.875; a = 93.75, b = 46.875
    assert rates["a"] == pytest.approx(93.75)
    assert rates["b"] == pytest.approx(46.875)


def test_weights_compose_with_minimums():
    rates = max_min_allocation(
        {"l": 100.0}, {"a": ["l"], "b": ["l"], "c": ["l"]},
        weights={"a": 2.0}, minimums={"c": 40.0})
    # c pinned at 40; remaining 60 split 2:1
    assert rates["c"] == pytest.approx(40.0)
    assert rates["a"] == pytest.approx(40.0)
    assert rates["b"] == pytest.approx(20.0)


def test_weight_validation():
    with pytest.raises(ValueError):
        max_min_allocation({"l": 1.0}, {"a": ["l"]}, weights={"zzz": 1.0})
    with pytest.raises(ValueError):
        max_min_allocation({"l": 1.0}, {"a": ["l"]}, weights={"a": 0.0})
    with pytest.raises(ValueError):
        AbrParams(weight=0.0)


# ----------------------------------------------------------------------
# weighted Phantom end to end
# ----------------------------------------------------------------------

def test_weighted_phantom_network():
    net = AtmNetwork(algorithm_factory=PhantomAlgorithm)
    net.add_switch("S1")
    net.add_switch("S2")
    net.connect("S1", "S2")
    heavy = net.add_session("heavy", route=["S1", "S2"],
                            params=AbrParams(weight=2.0))
    light = net.add_session("light", route=["S1", "S2"])
    net.run(until=0.3)
    # equilibrium: heavy = 2fΔ, light = fΔ, Δ = C - 3fΔ
    # => Δ = 150/16, light = 46.875, heavy = 93.75
    assert heavy.source.acr == pytest.approx(93.75, rel=0.1)
    assert light.source.acr == pytest.approx(46.875, rel=0.1)
    assert heavy.source.acr == pytest.approx(2 * light.source.acr,
                                             rel=0.05)


def test_weighted_phantom_matches_weighted_solver():
    net = AtmNetwork(algorithm_factory=PhantomAlgorithm)
    net.add_switch("S1")
    net.add_switch("S2")
    net.connect("S1", "S2")
    sessions = {}
    for name, weight in (("w1", 1.0), ("w2", 2.0), ("w4", 4.0)):
        sessions[name] = net.add_session(
            name, route=["S1", "S2"], params=AbrParams(weight=weight))
    net.run(until=0.3)
    reference = max_min_allocation(
        {"l": 150.0}, {name: ["l"] for name in sessions},
        phantom_weight=1.0 / 5.0,
        weights={"w1": 1.0, "w2": 2.0, "w4": 4.0})
    for name, session in sessions.items():
        assert session.source.acr == pytest.approx(reference[name],
                                                   rel=0.1)
