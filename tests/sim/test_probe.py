"""Unit tests for probes."""

import pytest

from repro.sim import Probe, StepProbe


def make_probe(points):
    p = Probe("p")
    for t, v in points:
        p.record(t, v)
    return p


def test_record_and_iterate():
    p = make_probe([(0.0, 1.0), (1.0, 2.0)])
    assert list(p) == [(0.0, 1.0), (1.0, 2.0)]
    assert len(p) == 2
    assert p.last == 2.0


def test_time_must_not_go_backwards():
    p = make_probe([(1.0, 1.0)])
    with pytest.raises(ValueError):
        p.record(0.5, 2.0)


def test_equal_times_allowed():
    p = make_probe([(1.0, 1.0), (1.0, 2.0)])
    assert p.values == [1.0, 2.0]


def test_value_at_sample_and_hold():
    p = make_probe([(0.0, 10.0), (2.0, 20.0)])
    assert p.value_at(0.0) == 10.0
    assert p.value_at(1.9) == 10.0
    assert p.value_at(2.0) == 20.0
    assert p.value_at(99.0) == 20.0


def test_value_at_before_first_sample_raises():
    p = make_probe([(1.0, 10.0)])
    with pytest.raises(ValueError):
        p.value_at(0.5)


def test_resample():
    p = make_probe([(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)])
    assert p.resample([0.5, 1.5, 2.5]) == [1.0, 2.0, 3.0]


def test_window():
    p = make_probe([(0.0, 1.0), (1.0, 2.0), (2.0, 3.0), (3.0, 4.0)])
    w = p.window(1.0, 2.0)
    assert list(w) == [(1.0, 2.0), (2.0, 3.0)]


def test_window_bounds_inclusive_and_between_samples():
    p = make_probe([(0.0, 1.0), (1.0, 2.0), (2.0, 3.0), (3.0, 4.0)])
    # bounds that fall between samples
    assert list(p.window(0.5, 2.5)) == [(1.0, 2.0), (2.0, 3.0)]
    # both endpoints inclusive
    assert list(p.window(0.0, 3.0)) == list(p)
    # empty windows: before, after, and between samples
    assert list(p.window(-2.0, -1.0)) == []
    assert list(p.window(4.0, 5.0)) == []
    assert list(p.window(1.2, 1.8)) == []
    # duplicate timestamps are all kept
    q = make_probe([(1.0, 1.0), (1.0, 2.0), (1.0, 3.0)])
    assert list(q.window(1.0, 1.0)) == [(1.0, 1.0), (1.0, 2.0), (1.0, 3.0)]


def test_window_is_a_copy():
    p = make_probe([(0.0, 1.0), (1.0, 2.0)])
    w = p.window(0.0, 1.0)
    w.record(2.0, 9.0)
    assert len(p) == 2


def test_step_probe_window_preserves_type_and_storage():
    from array import array

    p = StepProbe("q")
    for t, v in [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]:
        p.record(t, v)
    w = p.window(1.0, 2.0)
    assert isinstance(w, StepProbe)
    assert isinstance(w.times, array) and isinstance(w.values, array)
    assert list(w) == [(1.0, 2.0), (2.0, 3.0)]


def test_minmaxmean():
    p = make_probe([(0.0, 1.0), (1.0, 3.0), (2.0, 2.0)])
    assert p.max() == 3.0
    assert p.min() == 1.0
    assert p.mean() == 2.0


def test_time_average_weights_by_hold_duration():
    # value 0 for 1s then value 10 for 3s -> mean 7.5
    p = make_probe([(0.0, 0.0), (1.0, 10.0)])
    assert p.time_average(end=4.0) == pytest.approx(7.5)


def test_time_average_default_end():
    p = make_probe([(0.0, 0.0), (1.0, 10.0), (2.0, 0.0)])
    # 0 for 1s, 10 for 1s over span 2s -> 5
    assert p.time_average() == pytest.approx(5.0)


def test_time_average_truncates_to_end_before_last():
    p = make_probe([(0.0, 0.0), (1.0, 10.0), (4.0, 99.0)])
    assert p.time_average(end=2.0) == pytest.approx(5.0)


def test_time_average_empty_raises():
    with pytest.raises(ValueError):
        Probe().time_average()


def test_step_probe_suppresses_duplicates():
    p = StepProbe("q")
    p.record(0.0, 5.0)
    p.record(1.0, 5.0)
    p.record(2.0, 6.0)
    p.record(3.0, 6.0)
    assert list(p) == [(0.0, 5.0), (2.0, 6.0)]
    # sample-and-hold semantics preserved
    assert p.value_at(1.5) == 5.0
    assert p.value_at(3.5) == 6.0
