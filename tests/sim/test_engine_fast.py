"""Unit tests for the kernel-internal fast scheduling tier.

``schedule_fast``/``schedule_fast_at`` and ``advance_inline`` carry the
hot path's contract: mixing them with the checked tier must be
bit-identical to using the checked tier throughout.  These tests pin the
observable pieces of that contract — shared tie-break, event counting,
and every refusal condition of the inline-advance shortcut.
"""

import gc

import pytest

from repro.sim import Simulator


# ----------------------------------------------------------------------
# fast scheduling
# ----------------------------------------------------------------------

def test_fast_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule_fast(3.0, order.append, ("c",))
    sim.schedule_fast(1.0, order.append, ("a",))
    sim.schedule_fast_at(2.0, order.append, ("b",))
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.executed_events == 3


def test_fast_and_checked_tiers_share_the_tie_break():
    """Insertion order decides ties regardless of the tier used."""
    sim = Simulator()
    order = []
    sim.schedule(1.0, order.append, "checked-1")
    sim.schedule_fast(1.0, order.append, ("fast-1",))
    sim.schedule_at(1.0, order.append, "checked-2")
    sim.schedule_fast_at(1.0, order.append, ("fast-2",))
    sim.run()
    assert order == ["checked-1", "fast-1", "checked-2", "fast-2"]


def test_fast_args_default_to_empty_tuple():
    sim = Simulator()
    fired = []
    sim.schedule_fast(1.0, lambda: fired.append(True))
    sim.run()
    assert fired == [True]


def test_fast_events_count_toward_pending_events():
    sim = Simulator()
    sim.schedule_fast(1.0, lambda: None)
    ev = sim.schedule(2.0, lambda: None)
    assert sim.pending_events == 2
    ev.cancel()
    assert sim.pending_events == 1


def test_inlined_heappush_contract_matches_schedule_fast():
    """Components that push 5-tuples directly interleave correctly."""
    from heapq import heappush

    sim = Simulator()
    order = []
    sim.schedule_fast(1.0, order.append, ("via-method",))
    # the documented entry layout: (time, seq, None, fn, args)
    heappush(sim._heap, (1.0, next(sim._seq), None,
                         order.append, ("via-heappush",)))
    sim.schedule_fast(1.0, order.append, ("via-method-2",))
    sim.run()
    assert order == ["via-method", "via-heappush", "via-method-2"]


# ----------------------------------------------------------------------
# advance_inline
# ----------------------------------------------------------------------

def test_advance_inline_refused_outside_run():
    sim = Simulator()
    assert sim.advance_inline(1.0) is False
    assert sim.now == 0.0
    assert sim.executed_events == 0


def test_advance_inline_advances_clock_and_counts_one_event():
    sim = Simulator()
    seen = []

    def inside():
        assert sim.advance_inline(2.0) is True
        seen.append(sim.now)

    sim.schedule(1.0, inside)
    sim.run()
    assert seen == [2.0]
    assert sim.now == 2.0
    # the callback's own event plus the inline advance
    assert sim.executed_events == 2


def test_advance_inline_refused_when_a_tie_or_earlier_event_pends():
    sim = Simulator()
    results = []

    def inside():
        sim.schedule_fast(1.0, lambda: None)  # pending at t=2.0
        results.append(sim.advance_inline(2.0))  # tie -> must refuse
        results.append(sim.advance_inline(3.0))  # later event -> refuse
        results.append(sim.advance_inline(1.5))  # strictly first -> ok

    sim.schedule(1.0, inside)
    sim.run()
    assert results == [False, False, True]


def test_advance_inline_refused_beyond_until_bound():
    sim = Simulator()
    results = []

    def inside():
        results.append(sim.advance_inline(5.0))  # beyond until
        results.append(sim.advance_inline(2.0))  # within until

    sim.schedule(1.0, inside)
    sim.run(until=2.0)
    assert results == [False, True]
    assert sim.now == 2.0


def test_advance_inline_refused_under_max_events():
    """Bounded runs keep exact per-event semantics (safety valve)."""
    sim = Simulator()
    results = []
    sim.schedule(1.0, lambda: results.append(sim.advance_inline(2.0)))
    sim.run(max_events=10)
    assert results == [False]


def test_advance_inline_refused_after_stop():
    sim = Simulator()
    results = []

    def inside():
        sim.stop()
        results.append(sim.advance_inline(2.0))

    sim.schedule(1.0, inside)
    sim.run()
    assert results == [False]


def test_advance_inline_equivalence_with_scheduled_wakeup():
    """Draining via the shortcut reproduces the evented run exactly."""

    def drain_with(use_inline: bool):
        sim = Simulator()
        trace = []
        remaining = [5]

        def departure():
            trace.append(sim.now)
            if remaining[0] == 0:
                return
            remaining[0] -= 1
            at = sim.now + 0.25
            if use_inline and sim.advance_inline(at):
                departure()
            else:
                sim.schedule_fast_at(at, departure)

        sim.schedule(1.0, departure)
        sim.run()
        return trace, sim.executed_events, sim.now

    assert drain_with(True) == drain_with(False)


# ----------------------------------------------------------------------
# GC pause around run()
# ----------------------------------------------------------------------

def test_run_pauses_and_restores_gc():
    was_enabled = gc.isenabled()
    try:
        gc.enable()
        sim = Simulator()
        states = []
        sim.schedule(1.0, lambda: states.append(gc.isenabled()))
        sim.run()
        assert states == [False]
        assert gc.isenabled()
    finally:
        (gc.enable if was_enabled else gc.disable)()


def test_run_restores_gc_on_exception():
    was_enabled = gc.isenabled()
    try:
        gc.enable()
        sim = Simulator()

        def boom():
            raise RuntimeError("callback failure")

        sim.schedule(1.0, boom)
        with pytest.raises(RuntimeError):
            sim.run()
        assert gc.isenabled()
    finally:
        (gc.enable if was_enabled else gc.disable)()


def test_run_leaves_disabled_gc_disabled():
    was_enabled = gc.isenabled()
    try:
        gc.disable()
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert not gc.isenabled()
    finally:
        (gc.enable if was_enabled else gc.disable)()
