"""Unit tests for named random streams."""

from repro.sim import RngStreams


def test_same_name_same_stream_object():
    rng = RngStreams(seed=1)
    assert rng.stream("a") is rng.stream("a")


def test_streams_reproducible_across_instances():
    a = RngStreams(seed=42).stream("src-0").random()
    b = RngStreams(seed=42).stream("src-0").random()
    assert a == b


def test_different_names_are_independent():
    rng = RngStreams(seed=42)
    xs = [rng.stream("src-0").random() for _ in range(5)]
    ys = [rng.stream("src-1").random() for _ in range(5)]
    assert xs != ys


def test_stream_independent_of_creation_order():
    fwd = RngStreams(seed=7)
    fwd.stream("a")
    a_then = fwd.stream("b").random()

    rev = RngStreams(seed=7)
    b_only = rev.stream("b").random()
    assert a_then == b_only


def test_different_seeds_differ():
    a = RngStreams(seed=1).stream("x").random()
    b = RngStreams(seed=2).stream("x").random()
    assert a != b


def test_contains():
    rng = RngStreams()
    assert "x" not in rng
    rng.stream("x")
    assert "x" in rng
