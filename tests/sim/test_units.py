"""Unit tests for unit conversions."""

import pytest

from repro.sim import units


def test_cell_constants():
    assert units.CELL_BYTES == 53
    assert units.CELL_PAYLOAD_BYTES == 48
    assert units.CELL_BITS == 424


def test_mbps_cells_round_trip():
    for rate in (0.00424, 8.5, 150.0):
        cps = units.mbps_to_cells_per_sec(rate)
        assert units.cells_per_sec_to_mbps(cps) == pytest.approx(rate)


def test_150mbps_cell_rate():
    # 150e6 / 424 ~= 353,773 cells/s
    assert units.mbps_to_cells_per_sec(150.0) == pytest.approx(353773.58, rel=1e-6)


def test_tcr_matches_paper():
    # TCR = 10 cells/s = 4.24 Kb/s as stated in the paper
    assert units.cells_per_sec_to_mbps(units.TCR_CELLS_PER_SEC) == pytest.approx(0.00424)


def test_cell_time():
    assert units.cell_time(150.0) == pytest.approx(424 / 150e6)
    with pytest.raises(ValueError):
        units.cell_time(0.0)


def test_packet_time():
    # 512 bytes at 10 Mb/s
    assert units.packet_time(512, 10.0) == pytest.approx(512 * 8 / 10e6)
    with pytest.raises(ValueError):
        units.packet_time(512, -1.0)


def test_packets_per_sec():
    assert units.packets_per_sec(10.0, 512) == pytest.approx(10e6 / 4096)
