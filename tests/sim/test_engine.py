"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Simulator, SimulationError


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, order.append, "c")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(2.0, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    sim = Simulator()
    order = []
    for tag in "abcde":
        sim.schedule(1.0, order.append, tag)
    sim.run()
    assert order == list("abcde")


def test_now_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(2.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.5]
    assert sim.now == 2.5


def test_run_until_is_inclusive_and_sets_now():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(5.0, fired.append, 5)
    sim.run(until=1.0)
    assert fired == [1]
    assert sim.now == 1.0
    sim.run(until=3.0)
    assert fired == [1]
    assert sim.now == 3.0  # horizon reached even with no event there
    sim.run(until=10.0)
    assert fired == [1, 5]


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        sim.schedule(1.0, lambda: order.append("second"))

    sim.schedule(1.0, first)
    sim.run()
    assert order == ["first", "second"]
    assert sim.now == 2.0


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    ev = sim.schedule(1.0, fired.append, "x")
    ev.cancel()
    sim.run()
    assert fired == []
    assert sim.executed_events == 0


def test_cancel_is_idempotent_and_safe_after_fire():
    sim = Simulator()
    ev = sim.schedule(1.0, lambda: None)
    sim.run()
    ev.cancel()
    ev.cancel()


def test_stop_ends_run_early():
    sim = Simulator()
    fired = []

    def first():
        fired.append(1)
        sim.stop()

    sim.schedule(1.0, first)
    sim.schedule(2.0, fired.append, 2)
    sim.run()
    assert fired == [1]
    assert sim.pending_events == 1


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_until_in_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_max_events_bounds_execution():
    sim = Simulator()
    counter = []
    for _ in range(10):
        sim.schedule(1.0, counter.append, 1)
    sim.run(max_events=3)
    assert len(counter) == 3


def test_pending_events_excludes_cancelled():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    ev = sim.schedule(2.0, lambda: None)
    ev.cancel()
    assert sim.pending_events == 1


def test_callback_args_passed_through():
    sim = Simulator()
    got = []
    sim.schedule(1.0, lambda a, b: got.append((a, b)), 1, "x")
    sim.run()
    assert got == [(1, "x")]


def test_zero_delay_executes_at_current_time():
    sim = Simulator()
    times = []

    def outer():
        sim.schedule(0.0, lambda: times.append(sim.now))

    sim.schedule(2.0, outer)
    sim.run()
    assert times == [2.0]


def test_executed_events_counts_fired_only():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    ev = sim.schedule(2.0, lambda: None)
    ev.cancel()
    sim.schedule(3.0, lambda: None)
    sim.run()
    assert sim.executed_events == 2
