"""Unit tests for PeriodicTimer."""

import pytest

from repro.sim import PeriodicTimer, Simulator


def test_periodic_timer_fires_at_fixed_intervals():
    sim = Simulator()
    times = []
    timer = PeriodicTimer(sim, 0.5, lambda t: times.append(sim.now))
    timer.start()
    sim.run(until=2.0)
    assert times == [0.5, 1.0, 1.5, 2.0]
    assert timer.ticks == 4


def test_timer_custom_first_delay():
    sim = Simulator()
    times = []
    timer = PeriodicTimer(sim, 1.0, lambda t: times.append(sim.now))
    timer.start(delay=0.25)
    sim.run(until=3.0)
    assert times == [0.25, 1.25, 2.25]


def test_timer_stop_from_callback():
    sim = Simulator()
    times = []

    def cb(timer):
        times.append(sim.now)
        if timer.ticks == 2:
            timer.stop()

    timer = PeriodicTimer(sim, 1.0, cb)
    timer.start()
    sim.run(until=10.0)
    assert times == [1.0, 2.0]
    assert not timer.running


def test_timer_stop_and_restart():
    sim = Simulator()
    times = []
    timer = PeriodicTimer(sim, 1.0, lambda t: times.append(sim.now))
    timer.start()
    sim.run(until=2.0)
    timer.stop()
    sim.run(until=5.0)
    assert times == [1.0, 2.0]
    timer.start()
    sim.run(until=7.0)
    assert times == [1.0, 2.0, 6.0, 7.0]


def test_timer_double_start_rejected():
    sim = Simulator()
    timer = PeriodicTimer(sim, 1.0, lambda t: None)
    timer.start()
    with pytest.raises(RuntimeError):
        timer.start()


def test_timer_nonpositive_interval_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        PeriodicTimer(sim, 0.0, lambda t: None)


def test_timer_no_drift_over_many_ticks():
    sim = Simulator()
    times = []
    timer = PeriodicTimer(sim, 0.001, lambda t: times.append(sim.now))
    timer.start()
    sim.run(until=1.0)
    assert len(times) == 1000
    # exact multiples, no accumulation of float error
    assert times[999] == pytest.approx(1.0, abs=1e-12)
