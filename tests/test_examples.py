"""Smoke tests for the runnable examples (fast, reduced configurations)."""

import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


@pytest.fixture(autouse=True)
def _examples_on_path(monkeypatch):
    monkeypatch.syspath_prepend(str(EXAMPLES))
    # examples are scripts, not a package: purge between imports
    for name in ("make_figures",):
        sys.modules.pop(name, None)


def test_make_figures_writes_csvs(tmp_path, capsys):
    import make_figures
    rc = make_figures.main([
        "--outdir", str(tmp_path), "--duration", "0.05",
        "--scenario", "staggered", "--algorithm", "phantom",
    ])
    assert rc == 0
    csv = tmp_path / "staggered-phantom.csv"
    assert csv.exists()
    lines = csv.read_text().splitlines()
    assert lines[0].startswith("time,")
    assert "macr" in lines[0]
    assert len(lines) > 100


def test_make_figures_all_algorithms_one_scenario(tmp_path):
    import make_figures
    rc = make_figures.main([
        "--outdir", str(tmp_path), "--duration", "0.05",
        "--scenario", "rtt",
    ])
    assert rc == 0
    assert len(list(tmp_path.glob("rtt-*.csv"))) == len(
        make_figures.ALGORITHMS)


def test_example_files_present_and_executable_syntax():
    expected = {"quickstart.py", "atm_fairness.py",
                "tcp_selective_discard.py", "algorithm_shootout.py",
                "abr_guarantees.py", "make_figures.py"}
    found = {p.name for p in EXAMPLES.glob("*.py")}
    assert expected <= found
    for name in expected:
        compile((EXAMPLES / name).read_text(), name, "exec")
