"""Golden-trace tests: the fast kernel's bit-identity contract.

Each committed fixture under ``tests/golden/fixtures/`` pins one perf
workload's simulated outcome — probe-series sha256 digests over raw
IEEE-754 bytes, domain counters, final clock, executed-event count.  The
tests re-run every workload and require an exact match: a hot-path
change that shifts any timestamp, sample, or counter by even one ULP
fails here, which is what licenses the optimisations measured in
``BENCH_perf.json`` (see docs/PERFORMANCE.md).

The perturbation test closes the loop on the harness itself: it breaks
the engine's (time, seq) tie-break on purpose and asserts the comparison
*does* fail, so a silently weakened trace can't green-light a broken
kernel.
"""

from __future__ import annotations

import itertools
from pathlib import Path

import pytest

from repro.perf import golden
from repro.sim.engine import Simulator

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def _fixture(name: str) -> dict:
    return golden.read_trace(str(FIXTURES / f"{name}.json"))


@pytest.mark.parametrize("name", sorted(golden.GOLDEN_SCALES))
def test_workload_reproduces_golden_trace(name):
    expected = _fixture(name)
    actual = golden.capture(name, golden.GOLDEN_SCALES[name])
    assert golden.compare_traces(expected, actual) == []


def test_every_workload_has_a_fixture():
    assert sorted(golden.GOLDEN_SCALES) == golden.fixture_names()
    for name in golden.fixture_names():
        assert (FIXTURES / f"{name}.json").exists(), name


@pytest.mark.parametrize("name", sorted(golden.GOLDEN_SCALES))
def test_fixture_preserves_preopt_event_count(name):
    """The informational pre-optimization count stays committed.

    ``executed_events`` shrank when transmitters merged per-cell events;
    the fixture keeps the original count so the structural change is
    documented next to the value that gates it.
    """
    fixture = _fixture(name)
    assert fixture["executed_events_preopt"] >= fixture["executed_events"]


def test_capture_is_deterministic():
    """Two captures in one process are bit-identical (closed workloads)."""
    name = "e01_staggered"
    scale = golden.GOLDEN_SCALES[name]
    first = golden.capture(name, scale)
    second = golden.capture(name, scale)
    assert golden.compare_traces(first, second) == []


@pytest.mark.parametrize("name", ["e01_staggered", "e11_tcp"])
def test_traced_run_matches_untraced_digests(name):
    """Observation changes no simulated outcome.

    A run with the full trace bus enabled (every category, every emit
    point firing) must produce bit-identical probe digests, counters,
    and clock to the committed untraced fixture — the contract that
    lets tracing be turned on for debugging without invalidating any
    result captured without it.  One ATM and one TCP workload cover
    both protocol stacks' emit points.
    """
    from repro.obs import Tracer

    tracer = Tracer()
    traced = golden.capture(name, golden.GOLDEN_SCALES[name],
                            tracer=tracer)
    assert len(tracer.events) > 0, "tracer installed but nothing emitted"
    assert golden.compare_traces(_fixture(name), traced) == []


def _install_reversed_tie_break(monkeypatch):
    """Make later-scheduled events win timestamp ties, kernel-wide.

    The engine breaks ties by insertion order via a shared monotonically
    increasing sequence counter; replacing it with a *decreasing* one
    reverses same-instant ordering without touching any timestamp
    arithmetic.  Installed inside ``__init__`` so every component that
    aliases ``sim._seq`` at construction picks up the perturbed counter.
    """
    original_init = Simulator.__init__

    def reversed_ties(self):
        original_init(self)
        self._seq = itertools.count(0, -1)

    monkeypatch.setattr(Simulator, "__init__", reversed_ties)


def test_reversed_tie_break_flips_same_instant_order(monkeypatch):
    _install_reversed_tie_break(monkeypatch)
    sim = Simulator()
    order = []
    for tag in "abc":
        sim.schedule(1.0, order.append, tag)
    sim.run()
    assert order == ["c", "b", "a"]


def test_perturbed_tie_break_fails_the_comparison(monkeypatch):
    """A reversed tie-break must trip the golden check.

    ``e02_onoff`` is the tie-sensitive workload: its on/off toggles and
    re-pacing race emission wake-ups against toggles at identical
    instants, so same-instant ordering is observable in the trace.  (The
    other workloads' remaining ties happen to commute — which is itself
    informative — so the sensitivity is asserted where it must exist.)
    """
    _install_reversed_tie_break(monkeypatch)
    name = "e02_onoff"
    perturbed = golden.capture(name, golden.GOLDEN_SCALES[name])
    problems = golden.compare_traces(_fixture(name), perturbed)
    assert problems, ("reversed tie-break produced a bit-identical trace; "
                      "the golden harness lost its ordering sensitivity")
