"""Cross-machine baseline detection for wall-clock comparisons."""

from repro.perf import environment_mismatches

HOST = {"python": "3.11.9", "machine": "x86_64", "benchmarks": []}


def test_same_environment_is_silent():
    assert environment_mismatches(HOST, dict(HOST)) == []


def test_differing_fields_are_each_flagged():
    other = dict(HOST, python="3.12.1", machine="arm64")
    notes = environment_mismatches(HOST, other)
    assert len(notes) == 2
    assert any("python" in n and "3.12.1" in n and "3.11.9" in n
               for n in notes)
    assert any("machine" in n and "arm64" in n for n in notes)


def test_absent_fields_are_not_flagged():
    # pre-versioned baselines recorded no environment at all
    assert environment_mismatches(HOST, {"benchmarks": []}) == []
    assert environment_mismatches({}, HOST) == []
    partial = {"python": HOST["python"]}  # no machine field
    assert environment_mismatches(HOST, dict(partial, machine="")) == []
