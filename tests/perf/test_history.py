"""The append-only perf history log behind ``repro perf --record``."""

import json

from repro import perf
from repro.cli import main

REPORT = {
    "python": "3.12.0",
    "machine": "x86_64",
    "workloads": {
        "e01_staggered": {"scale": 0.2, "wall_s": 1.5,
                          "wall_per_sim_sec": 30.0,
                          "events_per_sec": 2e5,
                          "cells_per_sec": 1e5},
    },
}


def test_history_entry_keeps_trend_fields_only():
    entry = perf.history_entry(REPORT)
    assert entry["python"] == "3.12.0"
    assert entry["machine"] == "x86_64"
    assert isinstance(entry["cpus"], int)
    assert entry["workloads"] == {
        "e01_staggered": {"scale": 0.2, "wall_s": 1.5,
                          "wall_per_sim_sec": 30.0,
                          "events_per_sec": 2e5}}
    # ISO-8601 local stamp, greppable by date
    assert len(entry["timestamp"]) == 19 and entry["timestamp"][10] == "T"


def test_append_and_read_history_roundtrip(tmp_path):
    path = str(tmp_path / "hist.jsonl")
    first = perf.append_history(path, REPORT)
    second = perf.append_history(path, REPORT)
    with open(path, "a") as fh:
        fh.write("\n")   # a stray blank line must not break readers
    rows = perf.read_history(path)
    assert [r["workloads"] for r in rows] == \
        [first["workloads"], second["workloads"]]
    # JSONL: one parseable object per non-blank line
    lines = [ln for ln in open(path) if ln.strip()]
    assert len(lines) == 2
    assert all(isinstance(json.loads(ln), dict) for ln in lines)


def test_history_drift_uses_tighter_factor():
    slower = {"workloads": {
        "e01_staggered": dict(REPORT["workloads"]["e01_staggered"],
                              wall_per_sim_sec=30.0 * 1.3)}}
    assert perf.history_drift(REPORT, REPORT) == []
    drifts = perf.history_drift(slower, REPORT)
    assert len(drifts) == 1 and "1.2x" in drifts[0]
    # the hard --check factor (2x) would not have fired at 1.3x
    assert perf.check_regression(slower, REPORT) == []


def test_perf_record_cli_appends_row(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    hist = tmp_path / "hist.jsonl"
    assert main(["perf", "--workload", "e11_tcp", "--scale", "0.15",
                 "--record", "--history", str(hist)]) == 0
    out = capsys.readouterr().out
    assert f"recorded 1 workload(s) in {hist}" in out
    (row,) = perf.read_history(str(hist))
    assert set(row["workloads"]) == {"e11_tcp"}
    entry = row["workloads"]["e11_tcp"]
    assert entry["scale"] == 0.15
    assert entry["wall_per_sim_sec"] > 0


def test_perf_record_warns_on_drift_but_exits_zero(tmp_path, capsys,
                                                   monkeypatch):
    monkeypatch.chdir(tmp_path)
    # a committed baseline so fast that any real measurement drifts
    baseline = tmp_path / "base.json"
    baseline.write_text(json.dumps({
        "workloads": {"e11_tcp": {"wall_per_sim_sec": 1e-9}}}))
    hist = tmp_path / "hist.jsonl"
    assert main(["perf", "--workload", "e11_tcp", "--scale", "0.15",
                 "--record", "--history", str(hist),
                 "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "drift beyond 1.2x" in out
    assert len(perf.read_history(str(hist))) == 1
