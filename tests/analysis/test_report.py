"""Unit tests for report formatting."""

import pytest

from repro.analysis import format_table, series_block, sparkline
from repro.sim import Probe


def test_format_table_alignment():
    text = format_table(["name", "rate"], [["a", 1.5], ["bb", 10.25]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "name" in lines[0] and "rate" in lines[0]
    assert "1.50" in lines[2]
    assert "10.25" in lines[3]
    # columns aligned: all rows same width
    assert len({len(line) for line in lines}) == 1


def test_format_table_row_width_mismatch():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [["only-one"]])


def test_sparkline_range():
    line = sparkline([0.0, 1.0, 2.0, 3.0])
    assert len(line) == 4
    assert line[0] == "▁"
    assert line[-1] == "█"


def test_sparkline_constant_and_empty():
    assert sparkline([5.0, 5.0]) == "▁▁"
    assert sparkline([]) == ""


def test_sparkline_downsamples():
    line = sparkline(list(range(1000)), width=50)
    assert len(line) == 50


def test_series_block_contains_samples():
    p = Probe("x")
    for i in range(11):
        p.record(i * 0.01, float(i))
    block = series_block("rate", p, 0.0, 0.1, samples=3)
    assert "rate" in block
    assert "0.0ms" in block
    assert "100.0ms" in block


def test_series_block_validation():
    p = Probe("x")
    p.record(0.0, 1.0)
    with pytest.raises(ValueError):
        series_block("x", p, 0.0, 1.0, samples=1)
