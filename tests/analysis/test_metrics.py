"""Unit tests for the metrics module."""

import math

import pytest

from repro.analysis import (allocation_error, convergence_time, jain_index,
                            max_min_ratio, queue_stats, utilization)
from repro.sim import Probe


def probe_of(points):
    p = Probe("t")
    for t, v in points:
        p.record(t, v)
    return p


# ----------------------------------------------------------------------
# fairness
# ----------------------------------------------------------------------

def test_jain_equal_rates_is_one():
    assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)


def test_jain_starved_session_lowers_index():
    # one of two gets everything: J = 1/2
    assert jain_index([10.0, 0.0]) == pytest.approx(0.5)


def test_jain_known_value():
    # classic example: (1+2+3)^2 / (3*(1+4+9)) = 36/42
    assert jain_index([1.0, 2.0, 3.0]) == pytest.approx(36 / 42)


def test_jain_validation():
    with pytest.raises(ValueError):
        jain_index([])
    with pytest.raises(ValueError):
        jain_index([1.0, -2.0])
    assert jain_index([0.0, 0.0]) == 1.0


def test_max_min_ratio():
    assert max_min_ratio([2.0, 4.0]) == 2.0
    assert max_min_ratio([3.0]) == 1.0
    assert max_min_ratio([0.0, 1.0]) == math.inf
    with pytest.raises(ValueError):
        max_min_ratio([])


def test_allocation_error_zero_when_exact():
    ref = {"a": 10.0, "b": 20.0}
    assert allocation_error(ref, ref) == 0.0


def test_allocation_error_rms():
    measured = {"a": 11.0, "b": 18.0}
    ref = {"a": 10.0, "b": 20.0}
    expected = math.sqrt(((0.1) ** 2 + (0.1) ** 2) / 2)
    assert allocation_error(measured, ref) == pytest.approx(expected)


def test_allocation_error_validation():
    with pytest.raises(ValueError):
        allocation_error({"a": 1.0}, {"b": 1.0})
    with pytest.raises(ValueError):
        allocation_error({}, {})
    with pytest.raises(ValueError):
        allocation_error({"a": 1.0}, {"a": 0.0})


def test_allocation_error_accepts_superset_reference():
    # a whole-topology oracle scores a partial measurement: only the
    # measured sessions count, so a perfect subset is error zero
    oracle = {"a": 10.0, "b": 20.0, "phantom": 5.0}
    assert allocation_error({"a": 10.0}, oracle) == 0.0
    assert allocation_error({"a": 11.0}, oracle) == pytest.approx(0.1)
    # but a measured session absent from the reference still raises
    with pytest.raises(ValueError):
        allocation_error({"a": 10.0, "zz": 1.0}, oracle)


# ----------------------------------------------------------------------
# convergence
# ----------------------------------------------------------------------

def test_convergence_time_simple():
    p = probe_of([(0.0, 0.0), (1.0, 50.0), (2.0, 95.0), (3.0, 99.0),
                  (4.0, 101.0), (5.0, 100.0)])
    assert convergence_time(p, target=100.0, tolerance=0.1) == 2.0


def test_convergence_resets_on_excursion():
    p = probe_of([(0.0, 100.0), (1.0, 100.0), (2.0, 0.0), (3.0, 100.0),
                  (4.0, 100.0)])
    assert convergence_time(p, target=100.0, tolerance=0.1) == 3.0


def test_convergence_never():
    p = probe_of([(0.0, 0.0), (1.0, 10.0)])
    assert convergence_time(p, target=100.0) == math.inf


def test_convergence_needs_hold():
    p = probe_of([(0.0, 0.0), (1.0, 100.0)])  # enters band at the very end
    assert convergence_time(p, target=100.0, hold=0.5) == math.inf


def test_convergence_validation():
    with pytest.raises(ValueError):
        convergence_time(Probe(), target=1.0)
    with pytest.raises(ValueError):
        convergence_time(probe_of([(0.0, 1.0)]), target=0.0)


def test_convergence_accepts_oracle_mapping():
    # the oracle allocation passes straight through: the probe's own
    # name selects its entry, or an explicit session overrides it
    p = probe_of([(0.0, 0.0), (1.0, 50.0), (2.0, 95.0), (3.0, 99.0),
                  (4.0, 101.0), (5.0, 100.0)])
    assert p.name == "t"
    oracle = {"t": 100.0, "other": 30.0}
    assert convergence_time(p, oracle, tolerance=0.1) == 2.0
    assert convergence_time(p, oracle, tolerance=0.1,
                            session="t") == 2.0
    # selecting the other session's target: never in its 10% band
    assert convergence_time(p, oracle, session="other") == math.inf
    with pytest.raises(ValueError):
        convergence_time(p, oracle, session="missing")
    with pytest.raises(ValueError):
        convergence_time(probe_of([(0.0, 1.0)], ), {"x": 1.0})


# ----------------------------------------------------------------------
# utilisation and queues
# ----------------------------------------------------------------------

def test_utilization_sums_probes():
    a = probe_of([(0.0, 30.0), (10.0, 30.0)])
    b = probe_of([(0.0, 60.0), (10.0, 60.0)])
    assert utilization([a, b], capacity=100.0, start=0.0, end=10.0) == (
        pytest.approx(0.9))


def test_utilization_validation():
    p = probe_of([(0.0, 1.0)])
    with pytest.raises(ValueError):
        utilization([p], capacity=0.0, start=0.0, end=1.0)
    with pytest.raises(ValueError):
        utilization([p], capacity=1.0, start=1.0, end=1.0)


def test_queue_stats_window():
    q = probe_of([(0.0, 0.0), (1.0, 10.0), (2.0, 4.0), (3.0, 0.0)])
    stats = queue_stats(q, 0.0, 3.0)
    assert stats["max"] == 10.0
    assert stats["final"] == 0.0
    # time-weighted: 0*1 + 10*1 + 4*1 over 3s
    assert stats["mean"] == pytest.approx(14 / 3)


def test_queue_stats_empty_window_uses_held_value():
    q = probe_of([(0.0, 7.0)])
    stats = queue_stats(q, 5.0, 6.0)
    assert stats == {"max": 7.0, "mean": 7.0, "final": 7.0}


# ----------------------------------------------------------------------
# degenerate series
# ----------------------------------------------------------------------

def test_queue_stats_on_empty_probe_raises():
    # no sample exists anywhere, so not even the held-value fallback
    # can produce a number
    with pytest.raises(ValueError):
        queue_stats(Probe("empty"), 0.0, 1.0)


def test_queue_stats_window_before_first_sample_raises():
    q = probe_of([(5.0, 7.0)])
    with pytest.raises(ValueError):
        queue_stats(q, 0.0, 1.0)


def test_queue_stats_single_sample():
    q = probe_of([(0.5, 3.0)])
    stats = queue_stats(q, 0.0, 1.0)
    assert stats == {"max": 3.0, "mean": 3.0, "final": 3.0}


def test_queue_stats_zero_duration_window():
    q = probe_of([(0.0, 1.0), (1.0, 5.0), (2.0, 2.0)])
    # start == end on a sample instant: the sample's value, all three ways
    stats = queue_stats(q, 1.0, 1.0)
    assert stats == {"max": 5.0, "mean": 5.0, "final": 5.0}
    # start == end between samples: held value
    stats = queue_stats(q, 1.5, 1.5)
    assert stats == {"max": 5.0, "mean": 5.0, "final": 5.0}


def test_convergence_single_sample_needs_hold():
    p = probe_of([(1.0, 100.0)])
    # in-band from its only sample, but zero residence time < hold
    assert convergence_time(p, target=100.0, hold=0.01) == math.inf
    assert convergence_time(p, target=100.0, hold=0.0) == 1.0


def test_utilization_empty_window_raises():
    # utilization has no held-value fallback: a window with no samples
    # (before or after the data) has nothing to average
    with pytest.raises(ValueError):
        utilization([probe_of([(5.0, 1.0)])], capacity=1.0,
                    start=0.0, end=1.0)
    with pytest.raises(ValueError):
        utilization([probe_of([(0.0, 1.0)])], capacity=1.0,
                    start=2.0, end=3.0)
