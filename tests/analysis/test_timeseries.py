"""Unit tests for time-series utilities."""

import io
import math

import pytest

from repro.analysis import (oscillation_amplitude, resample_uniform,
                            uniform_grid, write_csv)
from repro.sim import Probe


def probe_of(points):
    p = Probe("p")
    for t, v in points:
        p.record(t, v)
    return p


def test_uniform_grid_endpoints_and_spacing():
    grid = uniform_grid(0.0, 1.0, 5)
    assert grid == pytest.approx([0.0, 0.25, 0.5, 0.75, 1.0])


def test_uniform_grid_validation():
    with pytest.raises(ValueError):
        uniform_grid(0.0, 1.0, 1)
    with pytest.raises(ValueError):
        uniform_grid(1.0, 1.0, 5)


def test_resample_uniform_holds_and_nans():
    p = probe_of([(0.5, 10.0), (1.0, 20.0)])
    times, values = resample_uniform(p, 0.0, 1.0, 5)
    assert math.isnan(values[0])
    assert math.isnan(values[1])  # t=0.25 before first sample
    assert values[2] == 10.0
    assert values[4] == 20.0


def test_oscillation_amplitude():
    p = probe_of([(i * 0.1, 10.0 + (5.0 if i % 2 else -5.0))
                  for i in range(20)])
    assert oscillation_amplitude(p, 0.0, 1.9) == pytest.approx(10.0)


def test_oscillation_amplitude_constant_signal():
    p = probe_of([(0.0, 3.0), (1.0, 3.0)])
    assert oscillation_amplitude(p, 0.0, 1.0) == 0.0


def test_oscillation_amplitude_empty_window():
    p = probe_of([(10.0, 1.0)])
    with pytest.raises(ValueError):
        oscillation_amplitude(p, 0.0, 1.0)


def test_write_csv_shape_and_alignment():
    a = probe_of([(0.0, 1.0), (0.5, 2.0)])
    b = probe_of([(0.25, 7.0)])
    out = io.StringIO()
    rows = write_csv(out, {"a": a, "b": b}, start=0.0, end=1.0, samples=5)
    assert rows == 5
    lines = out.getvalue().strip().splitlines()
    assert lines[0] == "time,a,b"
    assert len(lines) == 6
    # b is empty before 0.25
    first_row = lines[1].split(",")
    assert first_row[1] == "1.000000"
    assert first_row[2] == ""


def test_write_csv_requires_series():
    with pytest.raises(ValueError):
        write_csv(io.StringIO(), {}, 0.0, 1.0)
