"""Unit and integration tests for ERICA (the unbounded-space contrast)."""

import pytest

from repro.atm import AtmNetwork, Cell, OutputPort, RMCell, RMDirection
from repro.baselines import EricaAlgorithm, EricaParams
from repro.sim import Simulator, units


class NullSink:
    def receive(self, cell):
        pass


def make_alg(sim, params=None):
    alg = EricaAlgorithm(params or EricaParams())
    port = OutputPort(sim, "p", rate_mbps=150.0, sink=NullSink(),
                      algorithm=alg)
    return alg, port


def bwd(ccr, er=150.0):
    return RMCell(vc="A", direction=RMDirection.BACKWARD, ccr=ccr, er=er)


def test_fairshare_is_target_over_active_count():
    sim = Simulator()
    alg, port = make_alg(sim, EricaParams(interval=1e-3))
    for vc in ("A", "B", "C"):
        port.receive(Cell(vc=vc))
    sim.run(until=0.0011)
    assert alg.macr == pytest.approx(0.9 * 150.0 / 3)


def test_idle_port_counts_one_active_vc():
    sim = Simulator()
    alg, _ = make_alg(sim)
    sim.run(until=0.0011)
    assert alg.macr == pytest.approx(0.9 * 150.0)  # target / max(0,1)


def test_overload_factor_scales_er_down():
    sim = Simulator()
    alg, port = make_alg(sim, EricaParams(interval=1e-3))
    # offer 2x the target rate from one VC
    cells = int(units.mbps_to_cells_per_sec(270.0) * 1e-3)
    for i in range(cells):
        port.receive(Cell(vc="A", seq=i))
    sim.run(until=0.0011)
    assert alg.overload == pytest.approx(2.0, rel=0.05)
    rm = bwd(ccr=100.0)
    alg.on_backward_rm(rm)
    # max(fairshare=135, 100/2=50) = 135: single VC keeps the whole target
    assert rm.er == pytest.approx(135.0)


def test_er_lifted_to_fairshare_at_full_load():
    sim = Simulator()
    alg, port = make_alg(sim, EricaParams(interval=1e-3))
    # two VCs offering exactly the target rate together: z = 1
    cells = int(units.mbps_to_cells_per_sec(135.0) * 1e-3)
    for i in range(cells):
        port.receive(Cell(vc="A" if i % 2 else "B", seq=i))
    sim.run(until=0.0011)
    assert alg.overload == pytest.approx(1.0, rel=0.05)
    rm = bwd(ccr=1.0, er=150.0)
    alg.on_backward_rm(rm)
    # a slow session is raised to the fair share 135/2 = 67.5
    assert rm.er == pytest.approx(67.5, rel=0.05)


def test_state_grows_with_sessions():
    """The paper's point: ERICA is *not* constant space."""
    sim = Simulator()
    alg, port = make_alg(sim)
    baseline = len(alg.state_vars())
    for i in range(50):
        port.receive(Cell(vc=f"s{i}"))
    assert len(alg.state_vars()) == baseline + 50


@pytest.mark.parametrize("kwargs", [
    {"interval": 0.0}, {"target_utilization": 0.0},
    {"target_utilization": 1.5}, {"fairshare_init": 0.0},
])
def test_invalid_params(kwargs):
    with pytest.raises(ValueError):
        EricaParams(**kwargs)


def test_erica_network_reaches_equal_target_shares():
    net = AtmNetwork(algorithm_factory=EricaAlgorithm)
    net.add_switch("S1")
    net.add_switch("S2")
    net.connect("S1", "S2")
    a = net.add_session("A", route=["S1", "S2"])
    b = net.add_session("B", route=["S1", "S2"], start=0.03)
    net.run(until=0.3)
    # ERICA aims at target/N = 0.9*150/2 = 67.5 per session
    assert a.source.acr == pytest.approx(67.5, rel=0.1)
    assert b.source.acr == pytest.approx(67.5, rel=0.1)


def test_erica_parking_lot_max_min():
    from repro.scenarios import parking_lot
    run = parking_lot(EricaAlgorithm, hops=3, duration=0.3)
    rates = run.steady_rates()
    # classic max-min at 90% target: everyone ~0.9*150/2 at the first trunk
    assert rates["long"] == pytest.approx(rates["cross0"], rel=0.15)
