"""Unit and integration tests for CAPC."""

import pytest

from repro.atm import AtmNetwork, Cell, OutputPort, RMCell, RMDirection
from repro.baselines import CapcAlgorithm, CapcParams
from repro.sim import Simulator, units


class NullSink:
    def receive(self, cell):
        pass


def make_alg(sim, params=None):
    alg = CapcAlgorithm(params or CapcParams())
    port = OutputPort(sim, "p", rate_mbps=150.0, sink=NullSink(),
                      algorithm=alg)
    return alg, port


def test_ers_grows_multiplicatively_when_idle():
    sim = Simulator()
    alg, _ = make_alg(sim, CapcParams(interval=1e-3, ers_init=10.0))
    sim.run(until=0.00301)
    # idle: z = 0 -> growth factor min(eru, 1 + rup) = 1.1 per interval
    assert alg.macr == pytest.approx(10.0 * 1.1 ** 3, rel=1e-6)


def test_ers_capped_at_line_rate():
    sim = Simulator()
    alg, _ = make_alg(sim, CapcParams(ers_init=140.0))
    sim.run(until=0.2)
    assert alg.macr == 150.0


def test_overload_shrinks_ers():
    sim = Simulator()
    alg, port = make_alg(sim, CapcParams(interval=1e-3, ers_init=100.0))
    ct = units.cell_time(150.0)

    def feed():  # 150 Mb/s offered: z = 1/0.9 > 1
        port.receive(Cell(vc="A"))
        sim.schedule(ct, feed)

    sim.schedule(0.0, feed)
    sim.run(until=0.05)
    assert alg.macr < 100.0


def test_er_stamped_from_ers():
    sim = Simulator()
    alg, _ = make_alg(sim, CapcParams(ers_init=25.0))
    rm = RMCell(vc="A", direction=RMDirection.BACKWARD, er=150.0, ccr=50.0)
    alg.on_backward_rm(rm)
    assert rm.er == pytest.approx(25.0)
    assert rm.ci is False


def test_ci_set_for_everyone_above_queue_threshold():
    """CAPC's binary valve is indiscriminate — the beat-down seed."""
    sim = Simulator()
    alg, port = make_alg(sim, CapcParams(ct=50))
    for i in range(60):
        port.receive(Cell(vc="X", seq=i))
    rm_slow = RMCell(vc="A", direction=RMDirection.BACKWARD,
                     er=150.0, ccr=0.1)
    alg.on_backward_rm(rm_slow)
    assert rm_slow.ci is True  # even a near-idle session gets hit


def test_state_constant_space():
    sim = Simulator()
    alg, port = make_alg(sim)
    for i in range(100):
        port.receive(Cell(vc=f"s{i}"))
    assert set(alg.state_vars()) == {"ers", "cells_this_interval"}


@pytest.mark.parametrize("kwargs", [
    {"interval": 0.0}, {"target_utilization": 0.0},
    {"target_utilization": 1.5}, {"rup": 0.0}, {"rdn": -1.0},
    {"eru": 1.0}, {"erf": 1.0}, {"ct": 0}, {"ers_init": 0.0},
])
def test_invalid_params(kwargs):
    with pytest.raises(ValueError):
        CapcParams(**kwargs)


def capc_network():
    net = AtmNetwork(algorithm_factory=CapcAlgorithm)
    net.add_switch("S1")
    net.add_switch("S2")
    net.connect("S1", "S2")
    a = net.add_session("A", route=["S1", "S2"])
    b = net.add_session("B", route=["S1", "S2"], start=0.030)
    return net, a, b


def test_capc_network_fair_and_utilized():
    net, a, b = capc_network()
    net.run(until=0.5)
    rate_a = a.rate_probe.window(0.35, 0.5).mean()
    rate_b = b.rate_probe.window(0.35, 0.5).mean()
    # CAPC targets 90% utilisation split evenly
    assert rate_a == pytest.approx(rate_b, rel=0.2)
    assert rate_a + rate_b == pytest.approx(150.0 * 0.9 * 31 / 32, rel=0.2)


def test_capc_converges_slower_than_phantom():
    """Paper Fig. 22: CAPC's multiplicative creep takes longer to settle."""
    from repro.core import PhantomAlgorithm

    def time_to_reach(factory, fraction=0.8):
        net = AtmNetwork(algorithm_factory=factory)
        net.add_switch("S1")
        net.add_switch("S2")
        net.connect("S1", "S2")
        a = net.add_session("A", route=["S1", "S2"])
        net.run(until=0.5)
        target = 100.0  # Mb/s, below both equilibria
        for t, v in a.acr_probe:
            if v >= target:
                return t
        return float("inf")

    assert time_to_reach(CapcAlgorithm) > time_to_reach(PhantomAlgorithm)
