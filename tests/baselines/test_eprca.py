"""Unit and integration tests for EPRCA."""

import pytest

from repro.atm import AtmNetwork, Cell, OutputPort, RMCell, RMDirection
from repro.baselines import EprcaAlgorithm, EprcaParams
from repro.sim import Simulator


class NullSink:
    def receive(self, cell):
        pass


def make_alg(sim, params=None):
    alg = EprcaAlgorithm(params or EprcaParams())
    port = OutputPort(sim, "p", rate_mbps=150.0, sink=NullSink(),
                      algorithm=alg)
    return alg, port


def fwd(ccr):
    return RMCell(vc="A", direction=RMDirection.FORWARD, ccr=ccr, er=150.0)


def bwd(ccr, er=150.0):
    return RMCell(vc="A", direction=RMDirection.BACKWARD, ccr=ccr, er=er)


def test_macr_tracks_ccr_average():
    sim = Simulator()
    alg, _ = make_alg(sim)
    for _ in range(200):
        alg.on_forward_rm(fwd(ccr=40.0))
    assert alg.macr == pytest.approx(40.0, rel=0.01)


def test_no_marking_when_uncongested():
    sim = Simulator()
    alg, _ = make_alg(sim)
    rm = bwd(ccr=120.0)
    alg.on_backward_rm(rm)
    assert rm.er == 150.0


def fill_queue(port, cells):
    # hold the line: cells queue because only one transmits at a time
    for i in range(cells):
        port.receive(Cell(vc="X", seq=i))


def test_congested_marks_only_fast_sessions():
    sim = Simulator()
    alg, port = make_alg(sim, EprcaParams(qt=10, vqt=1000, macr_init=40.0))
    fill_queue(port, 20)
    assert alg.congested and not alg.very_congested
    fast = bwd(ccr=50.0)   # above dpf*macr = 35
    slow = bwd(ccr=30.0)   # below
    alg.on_backward_rm(fast)
    alg.on_backward_rm(slow)
    assert fast.er == pytest.approx(40.0 * 15 / 16)
    assert slow.er == 150.0


def test_very_congested_marks_everyone():
    sim = Simulator()
    alg, port = make_alg(sim, EprcaParams(qt=10, vqt=50, macr_init=40.0))
    fill_queue(port, 60)
    assert alg.very_congested
    slow = bwd(ccr=1.0)
    alg.on_backward_rm(slow)
    assert slow.er == pytest.approx(10.0)  # mrf * macr


def test_state_constant_space():
    sim = Simulator()
    alg, _ = make_alg(sim)
    for i in range(100):
        alg.on_forward_rm(
            RMCell(vc=f"s{i}", direction=RMDirection.FORWARD, ccr=10.0))
    assert set(alg.state_vars()) == {"macr"}


@pytest.mark.parametrize("kwargs", [
    {"av": 0.0}, {"dpf": 1.5}, {"erf": 0.0}, {"mrf": -0.1},
    {"qt": 0}, {"qt": 500, "vqt": 300}, {"macr_init": -1.0},
])
def test_invalid_params(kwargs):
    with pytest.raises(ValueError):
        EprcaParams(**kwargs)


def test_eprca_network_shares_bottleneck():
    net = AtmNetwork(algorithm_factory=EprcaAlgorithm)
    net.add_switch("S1")
    net.add_switch("S2")
    net.connect("S1", "S2")
    a = net.add_session("A", route=["S1", "S2"])
    b = net.add_session("B", route=["S1", "S2"], start=0.030)
    net.run(until=0.4)
    rate_a = a.rate_probe.window(0.25, 0.4).mean()
    rate_b = b.rate_probe.window(0.25, 0.4).mean()
    total = rate_a + rate_b
    # EPRCA keeps the link busy (its threshold design runs hotter than
    # Phantom) but must not collapse either session
    assert total > 100.0
    assert min(rate_a, rate_b) > 20.0


def test_eprca_queue_exceeds_phantom_queue():
    """Paper Section 5: threshold-based detection piles deeper queues."""

    def max_queue(factory):
        net = AtmNetwork(algorithm_factory=factory)
        net.add_switch("S1")
        net.add_switch("S2")
        net.connect("S1", "S2")
        net.add_session("A", route=["S1", "S2"])
        net.add_session("B", route=["S1", "S2"], start=0.030)
        net.run(until=0.3)
        return net.trunk("S1", "S2").queue_probe.max()

    from repro.core import PhantomAlgorithm
    assert max_queue(EprcaAlgorithm) > max_queue(PhantomAlgorithm)
