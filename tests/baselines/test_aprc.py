"""Unit and integration tests for APRC."""

import pytest

from repro.atm import AtmNetwork, Cell, OutputPort, RMCell, RMDirection
from repro.baselines import AprcAlgorithm, AprcParams
from repro.sim import Simulator


class NullSink:
    def receive(self, cell):
        pass


def make_alg(sim, params=None):
    alg = AprcAlgorithm(params or AprcParams())
    port = OutputPort(sim, "p", rate_mbps=150.0, sink=NullSink(),
                      algorithm=alg)
    return alg, port


def bwd(ccr, er=150.0):
    return RMCell(vc="A", direction=RMDirection.BACKWARD, ccr=ccr, er=er)


def test_congestion_follows_queue_growth_not_length():
    sim = Simulator()
    alg, port = make_alg(sim, AprcParams(sample_interval=1e-4))
    # build a queue, then let it grow between samples
    for i in range(50):
        port.receive(Cell(vc="A", seq=i))
    sim.run(until=1.5e-4)  # one sample: queue grew from 0
    assert alg.congested
    # now stop feeding: the queue drains, next samples see shrinkage
    sim.run(until=5e-4)
    assert not alg.congested


def test_large_but_stable_queue_not_congested():
    sim = Simulator()
    alg, port = make_alg(sim, AprcParams(sample_interval=1e-4, vqt=10_000))
    from repro.sim import units
    ct = units.cell_time(150.0)

    # pre-fill 500 cells, then feed exactly at line rate: length constant
    for i in range(500):
        port.receive(Cell(vc="A", seq=i))

    def feed():
        port.receive(Cell(vc="A"))
        sim.schedule(ct, feed)

    sim.schedule(0.0, feed)
    sim.run(until=2e-3)
    assert port.queue_len >= 490
    assert not alg.congested  # length huge, derivative ~0
    assert not alg.very_congested


def test_very_congested_is_threshold_based():
    sim = Simulator()
    alg, port = make_alg(sim, AprcParams(vqt=100))
    for i in range(150):
        port.receive(Cell(vc="A", seq=i))
    assert alg.very_congested
    rm = bwd(ccr=1.0)
    alg.on_backward_rm(rm)
    assert rm.er == pytest.approx(alg.params.mrf * alg.macr)


def test_macr_average_and_intelligent_marking():
    sim = Simulator()
    alg, port = make_alg(sim, AprcParams(sample_interval=1e-4,
                                         macr_init=40.0))
    # force congested state: queue growing
    for i in range(50):
        port.receive(Cell(vc="A", seq=i))
    sim.run(until=1.5e-4)
    assert alg.congested
    fast, slow = bwd(ccr=50.0), bwd(ccr=30.0)
    alg.on_backward_rm(fast)
    alg.on_backward_rm(slow)
    assert fast.er < 150.0
    assert slow.er == 150.0


def test_state_constant_space():
    sim = Simulator()
    alg, _ = make_alg(sim)
    for i in range(100):
        alg.on_forward_rm(
            RMCell(vc=f"s{i}", direction=RMDirection.FORWARD, ccr=10.0))
    assert set(alg.state_vars()) == {"macr", "prev_queue", "growing"}


@pytest.mark.parametrize("kwargs", [
    {"av": 2.0}, {"vqt": 0}, {"sample_interval": 0.0}, {"macr_init": -1.0},
])
def test_invalid_params(kwargs):
    with pytest.raises(ValueError):
        AprcParams(**kwargs)


def test_aprc_network_shares_bottleneck():
    net = AtmNetwork(algorithm_factory=AprcAlgorithm)
    net.add_switch("S1")
    net.add_switch("S2")
    net.connect("S1", "S2")
    a = net.add_session("A", route=["S1", "S2"])
    b = net.add_session("B", route=["S1", "S2"], start=0.030)
    net.run(until=0.4)
    rate_a = a.rate_probe.window(0.25, 0.4).mean()
    rate_b = b.rate_probe.window(0.25, 0.4).mean()
    assert rate_a + rate_b > 100.0
    assert min(rate_a, rate_b) > 20.0
