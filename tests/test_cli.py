"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "phantom" in out
    assert "selective-discard" in out
    assert "staggered" in out


def test_atm_staggered_phantom(capsys):
    assert main(["atm", "--scenario", "staggered",
                 "--algorithm", "phantom", "--duration", "0.15"]) == 0
    out = capsys.readouterr().out
    assert "Jain index" in out
    assert "MACR" in out
    assert "utilisation" in out


def test_atm_sessions_flag(capsys):
    assert main(["atm", "--scenario", "staggered", "--sessions", "3",
                 "--duration", "0.15"]) == 0
    out = capsys.readouterr().out
    assert "s2" in out


def test_atm_baseline_algorithm(capsys):
    assert main(["atm", "--scenario", "staggered",
                 "--algorithm", "capc", "--duration", "0.15"]) == 0
    assert "Jain" in capsys.readouterr().out


def test_tcp_selective_discard(capsys):
    assert main(["tcp", "--scenario", "many",
                 "--policy", "selective-discard",
                 "--duration", "5"]) == 0
    out = capsys.readouterr().out
    assert "goodput" in out
    assert "bottleneck q" in out


def test_maxmin_classic(capsys):
    assert main(["maxmin", "--link", "l1=100", "--link", "l2=100",
                 "--session", "long=l1,l2", "--session", "s1=l1",
                 "--session", "s2=l2"]) == 0
    out = capsys.readouterr().out
    assert "classic max-min" in out
    assert "50.00" in out


def test_maxmin_phantom_factor(capsys):
    assert main(["maxmin", "--link", "l=150",
                 "--session", "a=l", "--session", "b=l",
                 "--factor", "5"]) == 0
    out = capsys.readouterr().out
    assert "phantom max-min (f=5.0)" in out
    assert "68.18" in out


def test_maxmin_bad_spec():
    with pytest.raises(SystemExit):
        main(["maxmin", "--link", "nonsense", "--session", "a=l"])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
