"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def _run_in_tmpdir(tmp_path, monkeypatch):
    """atm/tcp/perf write run manifests into the cwd by default; keep
    test artifacts out of the repo checkout."""
    monkeypatch.chdir(tmp_path)


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "phantom" in out
    assert "selective-discard" in out
    assert "staggered" in out


def test_list_includes_exec_scenario_registry(capsys):
    """`repro list` is the one discoverable source of the registry names
    used by `repro suite/sweep` and the serve API's POST /jobs."""
    from repro.exec.registry import all_scenarios

    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "exec scenarios:" in out
    for name in all_scenarios():
        assert name in out


def test_serve_subcommand_is_wired():
    from repro.cli import build_parser

    args = build_parser().parse_args(["serve", "--port", "0",
                                      "--no-admission"])
    assert args.fn.__name__ == "_cmd_serve"
    assert args.port == 0 and args.no_admission

    from repro.serve.cli import config_from_args

    config = config_from_args(args)
    assert config.port == 0 and not config.admission


def test_atm_staggered_phantom(capsys):
    assert main(["atm", "--scenario", "staggered",
                 "--algorithm", "phantom", "--duration", "0.15"]) == 0
    out = capsys.readouterr().out
    assert "Jain index" in out
    assert "MACR" in out
    assert "utilisation" in out


def test_atm_sessions_flag(capsys):
    assert main(["atm", "--scenario", "staggered", "--sessions", "3",
                 "--duration", "0.15"]) == 0
    out = capsys.readouterr().out
    assert "s2" in out


def test_atm_baseline_algorithm(capsys):
    assert main(["atm", "--scenario", "staggered",
                 "--algorithm", "capc", "--duration", "0.15"]) == 0
    assert "Jain" in capsys.readouterr().out


def test_tcp_selective_discard(capsys):
    assert main(["tcp", "--scenario", "many",
                 "--policy", "selective-discard",
                 "--duration", "5"]) == 0
    out = capsys.readouterr().out
    assert "goodput" in out
    assert "bottleneck q" in out


def test_atm_writes_manifest_by_default(capsys, tmp_path):
    assert main(["atm", "--scenario", "staggered",
                 "--duration", "0.15"]) == 0
    assert "wrote repro_atm.manifest.json" in capsys.readouterr().out
    manifest = json.loads(
        (tmp_path / "repro_atm.manifest.json").read_text())
    assert manifest["schema"] == "repro.obs.manifest"
    assert manifest["command"] == "atm"
    assert manifest["params"]["scenario"] == "staggered"
    assert manifest["metrics"]


def test_atm_manifest_opt_out(capsys, tmp_path):
    assert main(["atm", "--scenario", "staggered",
                 "--duration", "0.15", "--manifest", ""]) == 0
    capsys.readouterr()
    assert not (tmp_path / "repro_atm.manifest.json").exists()


def test_atm_trace_flag_records_jsonl(capsys, tmp_path):
    assert main(["atm", "--scenario", "staggered", "--duration", "0.15",
                 "--trace", "t.jsonl"]) == 0
    assert "wrote t.jsonl" in capsys.readouterr().out
    from repro.obs import validate_trace_jsonl

    assert validate_trace_jsonl(str(tmp_path / "t.jsonl")) == []
    manifest = json.loads(
        (tmp_path / "repro_atm.manifest.json").read_text())
    assert manifest["trace"] == "t.jsonl"


def test_tcp_writes_manifest_by_default(capsys, tmp_path):
    assert main(["tcp", "--scenario", "many", "--policy", "drop-tail",
                 "--duration", "3"]) == 0
    capsys.readouterr()
    manifest = json.loads(
        (tmp_path / "repro_tcp.manifest.json").read_text())
    assert manifest["command"] == "tcp"
    assert manifest["params"]["policy"] == "drop-tail"


def test_perf_writes_companion_manifest(capsys, tmp_path):
    assert main(["perf", "--workload", "e11_tcp", "--scale", "0.15",
                 "--output", "bench.json"]) == 0
    capsys.readouterr()
    manifest = json.loads((tmp_path / "bench.manifest.json").read_text())
    assert manifest["command"] == "perf"
    assert manifest["params"]["workload"] == ["e11_tcp"]
    assert any(key.startswith("e11_tcp.") for key in manifest["metrics"])


def test_obs_record_and_diff_roundtrip(capsys, tmp_path):
    assert main(["obs", "record", "--workload", "e11_tcp",
                 "--trace", "a.jsonl", "--manifest", "a.json"]) == 0
    assert main(["obs", "record", "--workload", "e11_tcp",
                 "--trace", "b.jsonl", "--manifest", "b.json"]) == 0
    capsys.readouterr()
    assert main(["obs", "validate", "a.jsonl", "--manifest", "a.json"]) == 0
    # identical params and a closed workload: nothing to report
    assert main(["obs", "diff", "a.json", "b.json"]) == 0
    assert main(["obs", "summarize", "a.jsonl"]) == 0
    assert main(["obs", "convert", "a.jsonl"]) == 0
    capsys.readouterr()
    assert (tmp_path / "a.jsonl.chrome.json").exists()


def test_maxmin_classic(capsys):
    assert main(["maxmin", "--link", "l1=100", "--link", "l2=100",
                 "--session", "long=l1,l2", "--session", "s1=l1",
                 "--session", "s2=l2"]) == 0
    out = capsys.readouterr().out
    assert "classic max-min" in out
    assert "50.00" in out


def test_maxmin_phantom_factor(capsys):
    assert main(["maxmin", "--link", "l=150",
                 "--session", "a=l", "--session", "b=l",
                 "--factor", "5"]) == 0
    out = capsys.readouterr().out
    assert "phantom max-min (f=5.0)" in out
    assert "68.18" in out


def test_maxmin_bad_spec():
    with pytest.raises(SystemExit):
        main(["maxmin", "--link", "nonsense", "--session", "a=l"])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
