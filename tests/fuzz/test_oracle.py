"""The Fahmy round-based oracle: hand-worked allocations, input
validation, and cross-validation against the water-filling solver and
the health-report oracle."""

import pytest

from repro.atm.params import AbrParams
from repro.core import PhantomAlgorithm
from repro.core.fairness import max_min_allocation
from repro.fuzz.gen import generate_batch
from repro.fuzz.oracle import fair_share, oracle_for_config, topology_of
from repro.obs.health import oracle_allocation
from repro.scenarios import (on_off, parking_lot, rtt_spread,
                             staggered_start, transient)


# ----------------------------------------------------------------------
# hand-computed allocations
# ----------------------------------------------------------------------

def test_single_link_equal_split():
    shares = fair_share({"L": 150.0}, {"a": ["L"], "b": ["L"]})
    assert shares == pytest.approx({"a": 75.0, "b": 75.0})


def test_single_link_with_phantom_session():
    # the paper's equilibrium: r = f*C / (n*f + 1), here f=5, n=2
    shares = fair_share({"L": 150.0}, {"a": ["L"], "b": ["L"]},
                        phantom_weight=1 / 5)
    assert shares == pytest.approx({"a": 150 / 2.2, "b": 150 / 2.2})


def test_two_link_chain_bottleneck():
    # x,y share the 100 link; z mops up the 150 link's residual
    shares = fair_share({"A": 100.0, "B": 150.0},
                        {"x": ["A", "B"], "y": ["A"], "z": ["B"]})
    assert shares == pytest.approx({"x": 50.0, "y": 50.0, "z": 100.0})


def test_fahmy_three_round_example():
    # three bottleneck levels resolved in successive rounds: L1 fixes
    # a,b at 5; L2's residual then gives c,d 7.5; L3's gives e,f 11.25
    capacities = {"L1": 10.0, "L2": 20.0, "L3": 30.0}
    routes = {"a": ["L1"], "b": ["L1", "L2"], "c": ["L2"],
              "d": ["L2", "L3"], "e": ["L3"], "f": ["L3"]}
    shares = fair_share(capacities, routes)
    assert shares == pytest.approx(
        {"a": 5.0, "b": 5.0, "c": 7.5, "d": 7.5, "e": 11.25,
         "f": 11.25})


def test_weighted_split():
    shares = fair_share({"L": 120.0}, {"x": ["L"], "y": ["L"]},
                        weights={"y": 2.0})
    assert shares == pytest.approx({"x": 40.0, "y": 80.0})


def test_mcr_pinning_reruns_the_solve():
    # z's fair level (33.3) is below its 60 Mb/s guarantee: pin it,
    # re-solve x,y over what is left
    shares = fair_share({"L": 100.0},
                        {"x": ["L"], "y": ["L"], "z": ["L"]},
                        minimums={"z": 60.0})
    assert shares == pytest.approx({"x": 20.0, "y": 20.0, "z": 60.0})


def test_parking_lot_beat_down_is_avoided():
    # max-min gives the long session a full equal share on every hop —
    # the very property the beat-down scenarios measure against
    capacities = {f"L{i}": 150.0 for i in range(3)}
    routes = {"long": ["L0", "L1", "L2"]}
    routes.update({f"cross{i}": [f"L{i}"] for i in range(3)})
    shares = fair_share(capacities, routes)
    assert shares["long"] == pytest.approx(75.0)


# ----------------------------------------------------------------------
# input validation
# ----------------------------------------------------------------------

@pytest.mark.parametrize("capacities,routes,kwargs", [
    ({}, {}, {}),
    ({"L": 0.0}, {"a": ["L"]}, {}),
    ({"L": 10.0}, {"a": []}, {}),
    ({"L": 10.0}, {"a": ["M"]}, {}),
    ({"L": 10.0}, {"a": ["L"]}, {"phantom_weight": -0.1}),
    ({"L": 10.0}, {"a": ["L"]}, {"weights": {"b": 1.0}}),
    ({"L": 10.0}, {"a": ["L"]}, {"weights": {"a": 0.0}}),
    ({"L": 10.0}, {"a": ["L"]}, {"minimums": {"b": 1.0}}),
    ({"L": 10.0}, {"a": ["L"]}, {"minimums": {"a": -1.0}}),
])
def test_rejects_malformed_inputs(capacities, routes, kwargs):
    with pytest.raises(ValueError):
        fair_share(capacities, routes, **kwargs)


# ----------------------------------------------------------------------
# cross-validation: two independent solvers, one answer
# ----------------------------------------------------------------------

def test_agrees_with_water_filling_on_generated_topologies():
    checked = 0
    for spec in generate_batch(2, 30):
        config = spec.config
        capacities, routes = topology_of(config)
        weights = {}
        minimums = {}
        for session in config["sessions"]:
            params = AbrParams(**dict(session.get("params") or {}))
            weights[session["vc"]] = params.weight
            if params.mcr > 0:
                minimums[session["vc"]] = params.mcr
        kwargs = dict(phantom_weight=0.2, weights=weights,
                      minimums=minimums or None)
        ours = fair_share(capacities, routes, **kwargs)
        reference = max_min_allocation(capacities, routes, **kwargs)
        for vc in reference:
            assert ours[vc] == pytest.approx(reference[vc], rel=1e-9)
        checked += 1
    assert checked == 30


@pytest.mark.parametrize("builder", [staggered_start, rtt_spread,
                                     parking_lot, transient, on_off])
def test_agrees_with_the_health_oracle_on_curated_builders(builder):
    # the health report's oracle reads a *built* network; the fuzz
    # oracle reads a config.  Feed the built network's exporters into
    # fair_share and both must assign the same shares.
    run = builder(PhantomAlgorithm, run=False)
    net = run.net
    routes = {vc: path for vc, path in net.routes().items() if path}
    weights = {}
    minimums = {}
    pcr = {}
    for vc, session in net.sessions.items():
        params = session.source.params
        weights[vc] = params.weight
        if params.mcr > 0:
            minimums[vc] = params.mcr
        pcr[vc] = params.pcr
    factor = run.bottleneck.algorithm.params.utilization_factor
    ours = fair_share(net.capacities(), routes,
                      phantom_weight=1.0 / factor, weights=weights,
                      minimums=minimums or None)
    reference = oracle_allocation(run)
    assert set(ours) == set(reference)
    for vc in reference:
        assert min(ours[vc], pcr[vc]) \
            == pytest.approx(reference[vc], rel=1e-9)


# ----------------------------------------------------------------------
# config wiring: ports, PCR clamp, backward-RM tax
# ----------------------------------------------------------------------

def test_topology_of_exports_bidirectional_ports():
    capacities, routes = topology_of({
        "link_rate": 100.0,
        "trunks": [{"a": "S1", "b": "S2"},
                   {"a": "S2", "b": "S3", "rate": 150.0}],
        "sessions": [{"vc": "s0", "route": ["S1", "S2", "S3"]},
                     {"vc": "s1", "route": ["S3", "S2"]}],
    })
    assert capacities == {"S1->S2": 100.0, "S2->S1": 100.0,
                          "S2->S3": 150.0, "S3->S2": 150.0}
    assert routes == {"s0": ["S1->S2", "S2->S3"], "s1": ["S3->S2"]}


def test_one_directional_config_sees_no_rm_tax():
    # both sessions flow the same way: their backward RM cells ride
    # idle reverse ports, so the taxed fixpoint equals the plain solve
    config = {
        "link_rate": 150.0,
        "trunks": [{"a": "S1", "b": "S2"}],
        "sessions": [{"vc": "s0", "route": ["S1", "S2"]},
                     {"vc": "s1", "route": ["S1", "S2"]}],
        "algorithm_params": {"utilization_factor": 5.0},
    }
    shares = oracle_for_config(config)
    assert shares == pytest.approx({"s0": 150 / 2.2, "s1": 150 / 2.2})


def test_opposing_sessions_pay_the_backward_rm_tax():
    # each direction's only session would get C/(1+1/f) alone, but the
    # opposing session's backward RM stream (rate/Nrm) shaves its
    # capacity: the symmetric fixpoint is g = (C - g/32) / 1.2
    config = {
        "link_rate": 150.0,
        "trunks": [{"a": "S1", "b": "S2"}],
        "sessions": [{"vc": "fwd", "route": ["S1", "S2"]},
                     {"vc": "rev", "route": ["S2", "S1"]}],
        "algorithm_params": {"utilization_factor": 5.0},
    }
    shares = oracle_for_config(config)
    expected = 150.0 / (1.2 + 1.0 / 32)
    assert shares == pytest.approx({"fwd": expected, "rev": expected})
    assert shares["fwd"] < 150 / 1.2  # strictly below the untaxed share


def test_oracle_for_config_clamps_at_pcr():
    config = {
        "link_rate": 150.0,
        "trunks": [{"a": "S1", "b": "S2", "rate": 600.0}],
        "sessions": [{"vc": "s0", "route": ["S1", "S2"]}],
        "algorithm_params": {"utilization_factor": 5.0},
    }
    # fair level 600/1.2 = 500 Mb/s; the source's PCR caps it at 150
    assert oracle_for_config(config)["s0"] == pytest.approx(150.0)
