"""`repro fuzz run / shrink / replay` end to end (tiny budgets)."""

import json

import pytest

from repro.cli import main
from repro.exec.spec import TaskSpec
from repro.fuzz.corpus import load_entry, write_entry

# seed 16's first two draws are small phantom scenarios — the cheapest
# two-task campaign the generator produces among the low seeds
FAST = ["--seed", "16", "--budget", "2", "-j", "2"]


def run_fuzz(tmp_path, *extra, label="a"):
    out = tmp_path / f"report_{label}.json"
    manifest = tmp_path / f"manifest_{label}.json"
    code = main(["fuzz", "run", *FAST,
                 "--cache-dir", str(tmp_path / "cache"),
                 "--output", str(out),
                 "--manifest", str(manifest), *extra])
    report = json.loads(out.read_text()) if out.exists() else None
    mani = json.loads(manifest.read_text()) if manifest.exists() else None
    return code, report, mani


def tiny_pass_spec():
    return TaskSpec(
        task_id="tiny", scenario="fuzz.generic", seed=12,
        config={"family": "dumbbell", "switches": ["S1", "S2"],
                "trunks": [{"a": "S1", "b": "S2"}],
                "link_rate": 150.0, "algorithm": "phantom",
                "algorithm_params": {}, "duration": 0.1,
                "sessions": [{"vc": "s0", "route": ["S1", "S2"]}]})


def test_run_judges_and_reports(tmp_path, capsys):
    code, report, mani = run_fuzz(tmp_path)
    assert code == 0
    judged = {j["task_id"]: j for j in report["judgments"]}
    assert set(judged) == {"fuzz-16-0000", "fuzz-16-0001"}
    assert all(j["classification"] == "pass" for j in judged.values())
    assert report["counts"]["pass"] == 2
    assert mani["command"] == "fuzz"
    assert {t["task_id"] for t in mani["tasks"]} == set(judged)
    assert all("classification" in t for t in mani["tasks"])
    out = capsys.readouterr().out
    assert "2 pass, 0 violated" in out

    # cold run cannot satisfy --assert-cached; the warm one must
    code2, _, _ = run_fuzz(tmp_path / "cold", "--assert-cached",
                           label="cold")
    assert code2 == 1
    code3, report3, _ = run_fuzz(tmp_path, "--assert-cached", label="b")
    assert code3 == 0
    assert all(j["cached"] for j in report3["judgments"])


def test_run_records_throughput(tmp_path):
    bench = tmp_path / "bench.json"
    code, _, _ = run_fuzz(tmp_path, "--record-bench", str(bench))
    assert code == 0
    cold = json.loads(bench.read_text())["fuzz"]["j2-cold"]
    assert cold["budget"] == 2 and cold["cached"] == 0
    assert cold["scenarios_per_sec"] > 0
    code2, _, _ = run_fuzz(tmp_path, "--record-bench", str(bench),
                           label="b")
    assert code2 == 0
    merged = json.loads(bench.read_text())["fuzz"]
    assert merged["j2-warm"]["cached"] == 2
    assert merged["j2-cold"] == cold  # the cold row survives the merge


def test_run_rejects_bad_budget():
    with pytest.raises(SystemExit, match="budget"):
        main(["fuzz", "run", "--budget", "0"])


def test_shrink_refuses_a_passing_spec(tmp_path, capsys):
    spec_file = tmp_path / "spec.json"
    spec_file.write_text(json.dumps(tiny_pass_spec().to_dict()))
    with pytest.raises(SystemExit, match="nothing to shrink"):
        main(["fuzz", "shrink", "--spec", str(spec_file),
              "--cache-dir", str(tmp_path / "cache")])


def test_shrink_rejects_a_non_spec_file(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"nonsense": True}))
    with pytest.raises(SystemExit, match="does not hold a task spec"):
        main(["fuzz", "shrink", "--spec", str(bad)])


def test_replay_verifies_a_corpus_and_flags_divergence(tmp_path,
                                                       capsys):
    corpus = tmp_path / "corpus"
    write_entry(corpus, "tiny-pass", tiny_pass_spec(),
                expect={"classification": "pass"},
                notes="CLI replay fixture")
    code = main(["fuzz", "replay", "--corpus-dir", str(corpus),
                 "--cache-dir", str(tmp_path / "cache")])
    assert code == 0
    assert "all reproduce" in capsys.readouterr().out

    # flip the expectation: the same entry must now be DIVERGED
    entry = load_entry(corpus / "tiny-pass.json")
    entry["expect"] = {"classification": "violated",
                       "checks": ["queue_bound"]}
    (corpus / "tiny-pass.json").write_text(json.dumps(entry))
    code2 = main(["fuzz", "replay", "--corpus-dir", str(corpus),
                  "--cache-dir", str(tmp_path / "cache")])
    assert code2 == 1
    assert "DIVERGED" in capsys.readouterr().out


def test_replay_empty_corpus_fails(tmp_path, capsys):
    code = main(["fuzz", "replay",
                 "--corpus-dir", str(tmp_path / "empty")])
    assert code == 1
    assert "no corpus entries" in capsys.readouterr().out
