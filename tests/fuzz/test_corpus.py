"""The committed regression corpus: schema validity and the tier-1
replay gate — every entry must still reproduce its recorded judgment."""

from pathlib import Path

import pytest

from repro.exec.pool import run_tasks
from repro.exec.spec import TaskSpec
from repro.fuzz.corpus import (load_corpus, load_entry, replay_entry,
                               validate_entry, write_entry)
from repro.fuzz.harness import classify_result

CORPUS = Path(__file__).parent / "corpus"


@pytest.fixture(scope="module")
def corpus():
    entries = load_corpus(CORPUS)
    assert entries, "committed corpus is empty"
    return entries


def test_corpus_has_the_promised_coverage(corpus):
    assert len(corpus) >= 5
    names = {entry["name"] for _, entry in corpus}
    assert "binary-queue-ratchet" in names  # the one failing entry
    classifications = {entry["expect"]["classification"]
                       for _, entry in corpus}
    assert classifications == {"pass", "violated"}


def test_every_entry_validates_and_names_match_files(corpus):
    for path, entry in corpus:
        assert validate_entry(entry) == []
        assert path.stem == entry["name"]
        assert entry["notes"], f"{entry['name']} has no rationale"
        assert entry["origin"], f"{entry['name']} has no origin"


def test_corpus_replay_reproduces_every_entry(corpus):
    # the tier-1 gate: batch all entries through the pool (parallel,
    # cache-free) and hold each to its recorded judgment
    specs = [TaskSpec.from_dict(entry["spec"]) for _, entry in corpus]
    results = {r.spec.task_id: r for r in run_tasks(specs, retries=0)}
    diverged = []
    for _, entry in corpus:
        judgment = classify_result(results[entry["spec"]["task_id"]])
        expect = entry["expect"]
        ok = (judgment["classification"] == expect["classification"]
              and set(expect["checks"])
              <= set(judgment.get("checks", [])))
        if not ok:
            diverged.append((entry["name"], expect, judgment))
    assert not diverged, diverged


def test_write_and_load_round_trip(tmp_path):
    spec = TaskSpec(task_id="t", scenario="fuzz.generic", seed=5,
                    config={"duration": 0.1, "sessions": []})
    path = write_entry(tmp_path, "round-trip", spec,
                       expect={"classification": "pass"},
                       origin={"root_seed": 9}, notes="round trip")
    entry = load_entry(path)
    assert entry["name"] == "round-trip"
    assert TaskSpec.from_dict(entry["spec"]).canonical() \
        == spec.canonical()
    assert entry["expect"] == {"classification": "pass", "checks": []}


def test_write_entry_refuses_invalid(tmp_path):
    spec = TaskSpec(task_id="t", scenario="fuzz.generic", seed=5,
                    config={"duration": 0.1})
    with pytest.raises(ValueError, match="invalid corpus entry"):
        write_entry(tmp_path, "bad", spec, expect={})


def test_validate_entry_pinpoints_problems():
    assert validate_entry("nope") == ["corpus entry is not an object"]
    problems = validate_entry({"schema": "wrong", "version": 0,
                               "name": "", "spec": [],
                               "expect": None})
    joined = " ".join(problems)
    for needle in ("schema", "version", "name", "spec",
                   "expect.classification"):
        assert needle in joined


def test_replay_entry_flags_divergence(tmp_path):
    # an entry that *expects* a violation but actually passes must
    # come back as diverged, with the fresh judgment attached
    spec = TaskSpec(
        task_id="quiet", scenario="fuzz.generic", seed=3,
        config={"family": "dumbbell", "switches": ["S1", "S2"],
                "trunks": [{"a": "S1", "b": "S2"}],
                "link_rate": 150.0, "algorithm": "phantom",
                "algorithm_params": {}, "duration": 0.1,
                "sessions": [{"vc": "s0", "route": ["S1", "S2"]}]})
    path = write_entry(tmp_path, "quiet", spec,
                       expect={"classification": "violated",
                               "checks": ["queue_bound"]},
                       notes="deliberately wrong expectation")
    ok, judgment = replay_entry(load_entry(path))
    assert not ok
    assert judgment["classification"] == "pass"
