"""Greedy shrinking against synthetic judges: no simulation, the
algorithm's contract in isolation.  (The committed binary-queue-ratchet
corpus entry is the end-to-end witness that a real simulated failure
shrinks and reproduces; tests/fuzz/test_corpus.py replays it.)"""

import pytest

from repro.exec.spec import TaskSpec
from repro.fuzz.shrink import MIN_DURATION, config_size, shrink


def crufty_config():
    """Big config whose failure (by the judges below) needs only the
    two sessions crossing S1->S2."""
    return {
        "family": "chain",
        "switches": ["S1", "S2", "S3", "S4"],
        "trunks": [{"a": "S1", "b": "S2", "rate": 100.0},
                   {"a": "S2", "b": "S3", "delay": 1e-4},
                   {"a": "S3", "b": "S4"}],
        "link_rate": 150.0,
        "algorithm": "phantom",
        "algorithm_params": {"utilization_factor": 5.0,
                             "interval": 1e-3},
        "duration": 0.4,
        "rm_loss": 0.02,
        "sessions": [
            {"vc": "s0", "route": ["S1", "S2"], "start": 0.01,
             "access_delay": 1e-4, "params": {"weight": 2.0}},
            {"vc": "s1", "route": ["S1", "S2"], "start": 0.02,
             "access_delay": 2e-4, "params": {"mcr": 5.0}},
            {"vc": "s2", "route": ["S2", "S3", "S4"],
             "access_delay": 3e-4,
             "onoff": {"on": 0.01, "off": 0.02}},
            {"vc": "s3", "route": ["S4", "S3"], "start": 0.03,
             "access_delay": 4e-4},
            {"vc": "s4", "route": ["S2", "S3"], "start": 0.04,
             "access_delay": 5e-4, "params": {"weight": 4.0},
             "onoff": {"on": 0.02, "off": 0.01}},
        ],
        "vbr": [{"vc": "v0", "route": ["S3", "S4"], "peak": 20.0,
                 "mean_on": 0.01, "mean_off": 0.01}],
        "cbr": [{"vc": "c0", "route": ["S2", "S3"], "rate": 30.0,
                 "start": 0.05, "stop": 0.3}],
    }


def spec_of(config):
    probes = tuple(f"{s['vc']}.acr" for s in config["sessions"])
    return TaskSpec(task_id="crafted", scenario="fuzz.generic",
                    seed=77, probes=probes, config=config)


def congestion_judge(candidate):
    """Synthetic failure: violated while >= 2 sessions cross S1->S2."""
    crossing = sum(
        1 for s in candidate.config["sessions"]
        if ("S1", "S2") in zip(s["route"], s["route"][1:]))
    if crossing >= 2:
        return {"classification": "violated",
                "checks": ["queue_bound"]}
    return {"classification": "pass", "checks": []}


def test_shrink_reaches_the_minimal_core():
    report = shrink(spec_of(crufty_config()), judge=congestion_judge)
    minimized = report["spec"].config
    # only the two S1->S2 sessions survive, stripped to vc+route, and
    # the topology prunes to the one trunk they cross
    assert [s["vc"] for s in minimized["sessions"]] == ["s0", "s1"]
    assert all(set(s) == {"vc", "route"}
               for s in minimized["sessions"])
    assert minimized["switches"] == ["S1", "S2"]
    assert "vbr" not in minimized and "cbr" not in minimized
    assert "rm_loss" not in minimized
    assert report["size_after"] <= 0.25 * report["size_before"]
    assert report["signature"] == {"classification": "violated",
                                   "check": "queue_bound"}


def test_minimized_spec_keeps_identity_and_filters_probes():
    report = shrink(spec_of(crufty_config()), judge=congestion_judge)
    minimized = report["spec"]
    assert minimized.task_id == "crafted-min"
    assert minimized.scenario == "fuzz.generic"
    assert minimized.seed == 77
    # probes of dropped sessions go with them, survivors keep theirs
    assert minimized.probes == ("s0.acr", "s1.acr")


def test_duration_never_shrinks_below_the_floor():
    def always_fails(candidate):
        return {"classification": "crash", "checks": []}

    report = shrink(spec_of(crufty_config()), judge=always_fails)
    assert float(report["spec"].config["duration"]) >= MIN_DURATION


def test_secondary_checks_may_drop_but_not_the_primary():
    # the judge loses the secondary symptom once cruft is gone; the
    # shrink must still accept those candidates (primary reproduces)
    def two_symptom_judge(candidate):
        checks = ["queue_bound"]
        if "rm_loss" in candidate.config:
            checks.append("conservation")
        return {"classification": "violated", "checks": checks}

    report = shrink(spec_of(crufty_config()), judge=two_symptom_judge)
    assert "rm_loss" not in report["spec"].config
    assert report["signature"]["check"] == "queue_bound"


def test_passing_spec_is_rejected():
    def passes(candidate):
        return {"classification": "pass", "checks": []}

    with pytest.raises(ValueError, match="passes"):
        shrink(spec_of(crufty_config()), judge=passes)


def test_configless_spec_is_rejected():
    spec = TaskSpec(task_id="named", scenario="atm.staggered", seed=0)
    with pytest.raises(ValueError, match="inline config"):
        shrink(spec)


def test_attempts_count_the_judged_candidates():
    calls = []

    def counting_judge(candidate):
        calls.append(config_size(candidate.config))
        return congestion_judge(candidate)

    report = shrink(spec_of(crufty_config()), judge=counting_judge)
    assert report["attempts"] == len(calls) - 1  # first call = original
    assert report["size_after"] == config_size(report["spec"].config)
    assert calls[0] == report["size_before"]
