"""Seeded generation: determinism, prefix stability, config validity."""

from random import Random

import pytest

from repro.exec.spec import derive_seed
from repro.fuzz.gen import (SCENARIO, generate_batch, generate_config,
                            session_probes)
from repro.scenarios.generic import validate_config


def test_same_seed_same_batch():
    first = generate_batch(7, 12)
    second = generate_batch(7, 12)
    assert [s.canonical() for s in first] \
        == [s.canonical() for s in second]


def test_different_seeds_differ():
    assert generate_batch(0, 1)[0].canonical() \
        != generate_batch(1, 1)[0].canonical()


def test_budget_only_extends_the_batch():
    # task i draws from its own stream, so a bigger budget shares the
    # smaller batch as an exact prefix — corpus origins stay stable
    short = generate_batch(3, 5)
    long = generate_batch(3, 20)
    assert [s.canonical() for s in short] \
        == [s.canonical() for s in long[:5]]


def test_batch_specs_are_self_describing():
    for spec in generate_batch(11, 8):
        assert spec.scenario == SCENARIO
        assert spec.config is not None
        assert spec.seed == derive_seed(11, spec.task_id)
        assert spec.probes == session_probes(spec.config)


def test_every_generated_config_validates():
    # the builder's own validator is the contract: no generated config
    # may be rejected at build time
    for spec in generate_batch(0, 40):
        assert validate_config(spec.config) == [], spec.task_id


def test_probes_cover_every_session():
    config = generate_batch(5, 1)[0].config
    assert session_probes(config) == tuple(
        f"{s['vc']}.acr" for s in config["sessions"])


def test_batch_rejects_bad_budget():
    with pytest.raises(ValueError):
        generate_batch(0, 0)
    with pytest.raises(ValueError):
        generate_batch(0, -3)


def test_generated_space_covers_the_advertised_axes():
    # one modest batch must exercise families, algorithms, and the
    # optional knobs — a silent generator regression (everything
    # collapsing to one family) should fail loudly here
    configs = [s.config for s in generate_batch(0, 60)]
    assert {c["family"] for c in configs} \
        == {"dumbbell", "chain", "parking", "tree"}
    assert {c["algorithm"] for c in configs} >= {
        "phantom", "phantom-binary", "erica", "eprca", "capc"}
    assert any(c.get("rm_loss") for c in configs)
    assert any(c.get("vbr") for c in configs)
    assert any(c.get("cbr") for c in configs)
    assert any(s.get("onoff") for c in configs for s in c["sessions"])
    assert any("params" in s for c in configs for s in c["sessions"])


def test_binary_draws_always_carry_finite_buffers():
    # the fuzz envelope pins binary feedback to finite port buffers
    # (the binary-queue-ratchet corpus entry records why)
    rng = Random(99)
    seen = 0
    for _ in range(400):
        config = generate_config(rng)
        if config["algorithm"] != "phantom-binary":
            continue
        seen += 1
        assert all(t.get("buffer_cells") for t in config["trunks"])
        knobs = config["algorithm_params"]
        assert knobs["utilization_factor"] <= 5.0
        assert knobs.get("interval", 1e-3) <= 1e-3
    assert seen > 5


def test_generate_config_draws_only_from_the_injected_handle():
    # same handle state, same config — generate_config is a pure
    # function of the Random it is handed
    assert generate_config(Random(4)) == generate_config(Random(4))
