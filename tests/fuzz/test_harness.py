"""Property harness: eligibility gates, settled-ACR windows,
classification of synthetic results, batch judging."""

import pytest

from repro.exec.pool import ExecResult
from repro.exec.spec import TaskSpec
from repro.fuzz.harness import (CLASS_CRASH, CLASS_PASS, CLASS_TIMEOUT,
                                CLASS_VIOLATED, _window_mean,
                                classify_result, judge_batch,
                                oracle_eligibility)
from repro.obs.monitor import PASS, VIOLATED, check


def eligible_config(**overrides):
    """A config squarely inside the oracle-eligible region."""
    config = {
        "family": "dumbbell",
        "switches": ["S1", "S2"],
        "trunks": [{"a": "S1", "b": "S2"}],
        "link_rate": 150.0,
        "algorithm": "phantom",
        "algorithm_params": {"utilization_factor": 5.0},
        "duration": 0.25,
        "sessions": [{"vc": "s0", "route": ["S1", "S2"]},
                     {"vc": "s1", "route": ["S1", "S2"]}],
    }
    config.update(overrides)
    return config


# ----------------------------------------------------------------------
# eligibility gates
# ----------------------------------------------------------------------

def test_eligible_config_has_no_reason():
    assert oracle_eligibility(eligible_config()) is None


@pytest.mark.parametrize("overrides,needle", [
    ({"algorithm": "erica"}, "erica"),
    ({"algorithm_params": {"alpha_dec": 0.25}}, "alpha_dec"),
    ({"algorithm_params": {"utilization_factor": 20.0}}, "20"),
    ({"vbr": [{"vc": "v0"}]}, "cross-traffic"),
    ({"cbr": [{"vc": "c0"}]}, "cross-traffic"),
    ({"rm_loss": 0.01}, "RM-loss"),
    ({"sessions": [{"vc": "s0", "route": ["S1", "S2"],
                    "onoff": {"on": 0.01, "off": 0.01}}]}, "on/off"),
    ({"sessions": [{"vc": "s0", "route": ["S1", "S2"],
                    "access_delay": 0.005}]}, "feedback delay"),
    ({"duration": 0.05, "algorithm_params":
      {"utilization_factor": 5.0, "interval": 2e-3}}, "control interval"),
    ({"link_rate": 100.0,
      "trunks": [{"a": "S1", "b": "S2", "rate": 150.0}]},
     "access-limited"),
])
def test_gate_reasons(overrides, needle):
    reason = oracle_eligibility(eligible_config(**overrides))
    assert reason is not None and needle in reason


def test_gate_on_shares_below_the_grant_floor():
    # 40 sessions at f=5 share 150/(40 + 0.2) ≈ 3.7 Mb/s, under the 5%
    # grant floor of 7.5 — the law cannot express the oracle's answer
    crowd = [{"vc": f"s{i}", "route": ["S1", "S2"]} for i in range(40)]
    reason = oracle_eligibility(eligible_config(sessions=crowd))
    assert reason is not None and "grant floor" in reason


# ----------------------------------------------------------------------
# settled windows
# ----------------------------------------------------------------------

def test_window_mean_weighs_holding_times():
    # value 10 holds over [0, 0.5), 20 over [0.5, 1.0): mean 15 across
    # the whole window, 20 across the late half
    times, values = [0.0, 0.5], [10.0, 20.0]
    assert _window_mean(times, values, 0.0, 1.0) \
        == pytest.approx(15.0)
    assert _window_mean(times, values, 0.5, 1.0) \
        == pytest.approx(20.0)
    assert _window_mean(times, values, 0.75, 1.0) \
        == pytest.approx(20.0)


def test_window_mean_empty_series():
    assert _window_mean([], [], 0.0, 1.0) == 0.0


# ----------------------------------------------------------------------
# classification
# ----------------------------------------------------------------------

def _spec(config=None, probes=()):
    return TaskSpec(task_id="t", scenario="fuzz.generic", seed=1,
                    probes=probes, config=config)


def _flat_series(config, level):
    return {f"{s['vc']}.acr": {"times": [0.0], "values": [level]}
            for s in config["sessions"]}


def _result(config, checks=(), series=None, status="ok",
            error=None, probes=None):
    payload = None
    if status == "ok":
        payload = {"health": {"checks": list(checks)},
                   "series": series or {}}
    if probes is None:
        probes = tuple(f"{s['vc']}.acr" for s in config["sessions"])
    return ExecResult(spec=_spec(config, probes), status=status,
                      payload=payload, error=error)


def test_timeout_and_crash_short_circuit():
    config = eligible_config()
    timed = classify_result(_result(config, status="timeout",
                                    error="over budget"))
    assert timed["classification"] == CLASS_TIMEOUT
    crashed = classify_result(_result(config, status="error",
                                      error="builder rejected"))
    assert crashed["classification"] == CLASS_CRASH
    assert crashed["detail"] == "builder rejected"


def test_violated_health_check_dominates():
    config = eligible_config()
    judgment = classify_result(_result(
        config, checks=[check("conservation", VIOLATED)],
        series=_flat_series(config, 150 / 2.2)))
    assert judgment["classification"] == CLASS_VIOLATED
    assert judgment["checks"] == ["conservation"]


def test_settled_on_oracle_passes():
    config = eligible_config()
    judgment = classify_result(_result(
        config, checks=[check("conservation", PASS)],
        series=_flat_series(config, 150 / 2.2)))
    assert judgment["classification"] == CLASS_PASS
    assert judgment["oracle"]["s0"] == pytest.approx(150 / 2.2)
    assert "oracle_skipped" not in judgment


def test_settled_at_the_wrong_value_is_a_violation():
    # flat (zero drift) but 30% away from the fair share: the run is
    # settled, just unfair — exactly what the ε-band must catch
    config = eligible_config()
    judgment = classify_result(_result(
        config, series=_flat_series(config, 0.7 * 150 / 2.2)))
    assert judgment["classification"] == CLASS_VIOLATED
    assert judgment["checks"] == ["oracle_gap"]


def test_still_ramping_skips_the_band():
    # ACR doubles between the two comparison windows → not settled
    config = eligible_config(duration=1.0)
    series = {f"{s['vc']}.acr":
              {"times": [0.0, 0.75], "values": [40.0, 80.0]}
              for s in config["sessions"]}
    judgment = classify_result(_result(config, series=series))
    assert judgment["classification"] == CLASS_PASS
    assert "ramping" in judgment["oracle_skipped"]


def test_missing_probe_series_skips_the_band():
    config = eligible_config()
    judgment = classify_result(_result(config, series={}, probes=()))
    assert judgment["classification"] == CLASS_PASS
    assert "no ACR series" in judgment["oracle_skipped"]


def test_ineligible_config_reports_why():
    config = eligible_config(algorithm="erica")
    judgment = classify_result(_result(config))
    assert judgment["classification"] == CLASS_PASS
    assert "erica" in judgment["oracle_skipped"]


def test_judge_batch_counts_and_failing_index():
    config = eligible_config()
    results = [
        _result(config, series=_flat_series(config, 150 / 2.2)),
        _result(config, checks=[check("queue_bound", VIOLATED)],
                series=_flat_series(config, 150 / 2.2)),
        _result(config, status="error", error="boom"),
    ]
    summary = judge_batch(results)
    assert summary["counts"] == {"pass": 1, "violated": 1, "crash": 1,
                                 "timeout": 0}
    assert set(summary["failing"]) == {"t"}
    assert summary["oracle_checked"] == 2
