"""Property-based tests for the MACR filter invariants."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import MacrFilter, PhantomParams

residuals = st.lists(
    st.floats(min_value=-500.0, max_value=500.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=200)

params_strategy = st.builds(
    PhantomParams,
    alpha_inc=st.floats(min_value=0.01, max_value=1.0),
    alpha_dec=st.floats(min_value=0.01, max_value=1.0),
    beta=st.floats(min_value=0.01, max_value=1.0),
    dev_margin=st.floats(min_value=0.0, max_value=4.0),
    use_deviation=st.booleans(),
    macr_init=st.floats(min_value=0.0, max_value=150.0))


@given(residuals, params_strategy)
@settings(max_examples=300, deadline=None)
def test_macr_stays_in_range(samples, params):
    filt = MacrFilter(150.0, params)
    for s in samples:
        macr = filt.update(s)
        assert 0.0 <= macr <= 150.0
        assert filt.dev >= 0.0


@given(residuals, params_strategy)
@settings(max_examples=300, deadline=None)
def test_step_bounded_by_gain_times_error(samples, params):
    """One update never moves MACR further than α·|Δ − MACR| (plus
    clamping, which only shrinks the step)."""
    filt = MacrFilter(150.0, params)
    for s in samples:
        before = filt.macr
        err = s - before
        filt.update(s)
        bound = max(params.alpha_inc, params.alpha_dec) * abs(err)
        assert abs(filt.macr - before) <= bound + 1e-9


@given(st.floats(min_value=0.0, max_value=150.0),
       params_strategy)
@settings(max_examples=200, deadline=None)
def test_constant_input_is_approached_monotonically(target, params):
    filt = MacrFilter(150.0, params)
    prev_gap = abs(target - filt.macr)
    for _ in range(50):
        filt.update(target)
        gap = abs(target - filt.macr)
        assert gap <= prev_gap + 1e-9
        prev_gap = gap


@given(residuals)
@settings(max_examples=200, deadline=None)
def test_deviation_damped_filter_never_overtakes_raw_upward(samples):
    """With identical inputs the deviation-damped filter's increases are
    never larger than the raw filter's (damping only shrinks steps)."""
    damped = MacrFilter(150.0, PhantomParams(macr_init=10.0))
    raw = MacrFilter(150.0, PhantomParams(macr_init=10.0,
                                          use_deviation=False))
    for s in samples:
        d_before, r_before = damped.macr, raw.macr
        damped.update(s)
        raw.update(s)
        d_step = damped.macr - d_before
        r_step = raw.macr - r_before
        if d_before == r_before and d_step > 0 and r_step > 0:
            assert d_step <= r_step + 1e-9
