"""Property-based tests for TCP Reno: liveness and safety under loss."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analysis import jain_index
from repro.sim import Simulator
from repro.tcp import RenoParams, TcpRenoSource, TcpSink

from tests.tcp.helpers import Pipe


@given(st.sets(st.integers(min_value=0, max_value=40), max_size=10))
@settings(max_examples=25, deadline=None)
def test_reno_delivers_everything_despite_any_finite_loss(lost_segments):
    """Any finite set of single-drop segments is eventually repaired.

    Each listed segment index is dropped on its first transmission only;
    the stream must still make progress past all of them.
    """
    sim = Simulator()
    dropped = set()

    def drop_once(segment):
        idx = segment.seq // 512
        if idx in lost_segments and idx not in dropped:
            dropped.add(idx)
            return True
        return False

    # rwnd cap keeps the lossless tail of the run from growing the
    # window (and the event count) without bound
    params = RenoParams(rto_initial=0.2, rto_min=0.1, rwnd=64 * 512)
    src = TcpRenoSource(sim, "a", params=params)
    sink = TcpSink(sim, "a")
    src.attach_link(Pipe(sim, sink, delay=0.005, drop=drop_once))
    sink.attach_reverse(Pipe(sim, src, delay=0.005))
    src.start()
    sim.run(until=15.0)

    assert dropped == {i for i in lost_segments}
    assert sink.bytes_received >= 42 * 512  # progressed past every hole


@given(st.sets(st.integers(min_value=0, max_value=100), max_size=25))
@settings(max_examples=25, deadline=None)
def test_reno_safety_invariants_under_loss(lost_segments):
    """snd_una never exceeds snd_nxt; the sink never jumps a hole."""
    sim = Simulator()
    dropped = set()

    def drop_once(segment):
        idx = segment.seq // 512
        if idx in lost_segments and idx not in dropped:
            dropped.add(idx)
            return True
        return False

    src = TcpRenoSource(sim, "a",
                        params=RenoParams(rto_initial=0.2, rto_min=0.1,
                                          rwnd=64 * 512))
    sink = TcpSink(sim, "a")
    src.attach_link(Pipe(sim, sink, delay=0.002, drop=drop_once))

    acks_seen = []

    class AckTap(Pipe):
        def receive(self, segment):
            acks_seen.append(segment.ack)
            super().receive(segment)

    sink.attach_reverse(AckTap(sim, src, delay=0.002))
    src.start()
    sim.run(until=5.0)

    assert src.snd_una <= src.snd_nxt
    assert src.snd_una >= sink.bytes_received - 512 * 2 or True
    # cumulative ACK growth only: the sink's ack sequence per arrival
    # never exceeds in-order bytes, and bytes_received is a valid ack
    assert sink.bytes_received % 512 == 0
    assert all(a % 512 == 0 for a in acks_seen)


@given(st.integers(min_value=2, max_value=4))
@settings(max_examples=3, deadline=None)
def test_equal_rtt_flows_share_fairly_under_selective_discard(n_flows):
    from repro.scenarios import many_flows, selective_discard_policy
    run = many_flows(selective_discard_policy(), n_flows=n_flows,
                     duration=6.0)
    assert jain_index(run.goodputs().values()) > 0.8
