"""Property-based tests for the simulation kernel."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.sim import Probe, Simulator


@given(st.lists(st.floats(min_value=0.0, max_value=1000.0), min_size=1,
                max_size=100))
@settings(max_examples=200, deadline=None)
def test_events_always_execute_in_time_order(delays):
    sim = Simulator()
    executed = []
    for d in delays:
        sim.schedule(d, lambda d=d: executed.append(sim.now))
    sim.run()
    assert executed == sorted(executed)
    assert len(executed) == len(delays)


@given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=100.0),
                          st.booleans()),
                min_size=1, max_size=60))
@settings(max_examples=200, deadline=None)
def test_cancelled_events_never_fire(entries):
    sim = Simulator()
    fired = []
    events = []
    for i, (delay, cancel) in enumerate(entries):
        events.append((sim.schedule(delay, fired.append, i), cancel))
    for event, cancel in events:
        if cancel:
            event.cancel()
    sim.run()
    expected = {i for i, (_, cancel) in enumerate(entries) if not cancel}
    assert set(fired) == expected


@given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1,
                max_size=50),
       st.floats(min_value=0.0, max_value=100.0))
@settings(max_examples=200, deadline=None)
def test_run_until_boundary(delays, until):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, lambda d=d: fired.append(d))
    sim.run(until=until)
    assert all(d <= until for d in fired)
    assert sim.now >= min(until, max(delays) if delays else until) or True
    assert sorted(fired) == sorted(d for d in delays if d <= until)


@given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=10.0),
                          st.floats(min_value=-100.0, max_value=100.0)),
                min_size=1, max_size=100))
@settings(max_examples=200, deadline=None)
def test_probe_time_average_within_bounds(points):
    points = sorted(points, key=lambda p: p[0])
    probe = Probe("p")
    for t, v in points:
        probe.record(t, v)
    avg = probe.time_average(end=points[-1][0] + 1.0)
    assert min(probe.values) - 1e-9 <= avg <= max(probe.values) + 1e-9


@given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=10.0),
                          st.floats(min_value=-100.0, max_value=100.0)),
                min_size=1, max_size=50),
       st.floats(min_value=0.0, max_value=12.0))
@settings(max_examples=200, deadline=None)
def test_probe_value_at_is_sample_and_hold(points, query):
    points = sorted(points, key=lambda p: p[0])
    probe = Probe("p")
    for t, v in points:
        probe.record(t, v)
    earlier = [v for t, v in zip(probe.times, probe.values) if t <= query]
    if earlier:
        assert probe.value_at(query) == earlier[-1]
    else:
        assert probe.value_at(query, default=-1.0) == -1.0
