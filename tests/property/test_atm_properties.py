"""Property-based tests for the ATM substrate: conservation and bounds."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.atm import AtmNetwork, PAPER_PARAMS
from repro.core import PhantomAlgorithm


@st.composite
def session_plans(draw):
    """1-4 sessions with random start times in [0, 50 ms]."""
    n = draw(st.integers(min_value=1, max_value=4))
    starts = [draw(st.floats(min_value=0.0, max_value=0.05))
              for _ in range(n)]
    return starts


def build_and_run(starts, duration=0.1):
    net = AtmNetwork(algorithm_factory=PhantomAlgorithm)
    net.add_switch("S1")
    net.add_switch("S2")
    net.connect("S1", "S2")
    sessions = [net.add_session(f"s{i}", route=["S1", "S2"], start=start)
                for i, start in enumerate(starts)]
    net.run(until=duration)
    return net, sessions


@given(session_plans())
@settings(max_examples=20, deadline=None)
def test_cell_conservation_without_drops(starts):
    """Unbounded buffers: every sent cell is delivered, queued, or still
    in flight — never duplicated, never silently lost."""
    net, sessions = build_and_run(starts)
    trunk = net.trunk("S1", "S2")
    assert trunk.drops == 0
    for session in sessions:
        sent = session.source.cells_sent + session.source.out_of_rate_rm_sent
        received = (session.destination.data_received
                    + session.destination.rm_received)
        assert received <= sent
        # in-flight bound: trunk queue + a handful on links
        assert sent - received <= trunk.queue_len + 64


@given(session_plans())
@settings(max_examples=20, deadline=None)
def test_acr_always_within_contract(starts):
    """ACR never leaves [floor, PCR] at any recorded instant."""
    _, sessions = build_and_run(starts)
    floor = PAPER_PARAMS.floor_mbps
    for session in sessions:
        for value in session.acr_probe.values:
            assert floor - 1e-12 <= value <= PAPER_PARAMS.pcr + 1e-12


@given(session_plans())
@settings(max_examples=20, deadline=None)
def test_rm_loop_conservation(starts):
    """Backward RMs seen by a source never exceed forward RMs it sent,
    and the destination turns around exactly what it received."""
    _, sessions = build_and_run(starts)
    for session in sessions:
        source, dest = session.source, session.destination
        assert source.backward_rms_seen <= source.rm_sent
        assert dest.rm_received <= source.rm_sent


@given(session_plans())
@settings(max_examples=15, deadline=None)
def test_macr_bounded_by_line_rate(starts):
    net, _ = build_and_run(starts)
    macr_probe = net.trunk("S1", "S2").algorithm.macr_probe
    for value in macr_probe.values:
        assert 0.0 <= value <= 150.0
