"""Property-based tests for the max-min solvers (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import max_min_allocation, phantom_allocation


@st.composite
def problems(draw):
    """Random feasible fairness problems: links, sessions, routes."""
    n_links = draw(st.integers(min_value=1, max_value=6))
    links = {f"l{i}": draw(st.floats(min_value=1.0, max_value=1000.0))
             for i in range(n_links)}
    n_sessions = draw(st.integers(min_value=1, max_value=8))
    routes = {}
    for s in range(n_sessions):
        size = draw(st.integers(min_value=1, max_value=n_links))
        path = draw(st.permutations(sorted(links)))[:size]
        routes[f"s{s}"] = list(path)
    return links, routes


@given(problems())
@settings(max_examples=200, deadline=None)
def test_allocation_is_feasible(problem):
    links, routes = problem
    rates = max_min_allocation(links, routes)
    for link, cap in links.items():
        load = sum(rates[s] for s, path in routes.items() if link in path)
        assert load <= cap * (1 + 1e-9)


@given(problems())
@settings(max_examples=200, deadline=None)
def test_all_rates_positive_and_all_sessions_allocated(problem):
    links, routes = problem
    rates = max_min_allocation(links, routes)
    assert set(rates) == set(routes)
    assert all(r > 0 for r in rates.values())


@given(problems())
@settings(max_examples=200, deadline=None)
def test_every_session_has_a_saturated_bottleneck(problem):
    """Max-min optimality: each session crosses a saturated link where it
    is among the top-rated sessions (else its rate could grow)."""
    links, routes = problem
    rates = max_min_allocation(links, routes)
    for s, path in routes.items():
        found = False
        for link in path:
            load = sum(rates[x] for x, p in routes.items() if link in p)
            saturated = load >= links[link] * (1 - 1e-9)
            top = all(rates[s] >= rates[x] * (1 - 1e-9)
                      for x, p in routes.items() if link in p)
            if saturated and top:
                found = True
                break
        assert found, f"session {s} could be increased"


@given(problems(),
       st.floats(min_value=0.01, max_value=10.0),
       st.floats(min_value=0.01, max_value=10.0))
@settings(max_examples=150, deadline=None)
def test_phantom_weight_monotone(problem, w1, w2):
    """A heavier phantom leaves less for every real session."""
    links, routes = problem
    low, high = sorted((w1, w2))
    rates_low = max_min_allocation(links, routes, phantom_weight=low)
    rates_high = max_min_allocation(links, routes, phantom_weight=high)
    for s in routes:
        assert rates_high[s] <= rates_low[s] * (1 + 1e-9)


@given(problems())
@settings(max_examples=100, deadline=None)
def test_phantom_converges_to_classic_for_large_f(problem):
    links, routes = problem
    classic = max_min_allocation(links, routes)
    near = phantom_allocation(links, routes, utilization_factor=1e9)
    for s in routes:
        assert abs(near[s] - classic[s]) <= classic[s] * 1e-6


@given(problems())
@settings(max_examples=100, deadline=None)
def test_single_link_sessions_split_equally(problem):
    """Sessions with identical routes always get identical rates."""
    links, routes = problem
    rates = max_min_allocation(links, routes)
    by_route = {}
    for s, path in routes.items():
        by_route.setdefault(frozenset(path), []).append(rates[s])
    for values in by_route.values():
        assert max(values) - min(values) <= max(values) * 1e-9
