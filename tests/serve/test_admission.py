"""PhantomAdmission under a fake clock: convergence, overload, floors.

Everything here drives the controller with explicit ``now`` values, so
the tests are deterministic — no sleeping, no wall clock.
"""

import pytest

from repro.core.params import PhantomParams
from repro.serve.admission import PhantomAdmission

CAP = 10.0
PARAMS = PhantomParams(interval=0.1, macr_init=CAP)


def make(burst: float = 1.0, enabled: bool = True) -> PhantomAdmission:
    return PhantomAdmission(CAP, PARAMS, burst=burst, enabled=enabled)


def offer(adm: PhantomAdmission, client: str, *, rate: float,
          start: float, duration: float):
    """Offer ``rate`` req/s from ``client``; returns the decisions."""
    decisions = []
    step = 1.0 / rate
    t = start
    while t < start + duration:
        decisions.append(adm.try_admit(client, t))
        t += step
    return decisions


def test_rejects_bad_parameters():
    with pytest.raises(ValueError):
        PhantomAdmission(0.0)
    with pytest.raises(ValueError):
        PhantomAdmission(CAP, burst=0.5)


def test_initial_grant_is_capacity():
    adm = make()
    # MACR starts at capacity; f·MACR clamps to the line rate
    assert adm.try_admit("a", 0.0).allowed_rate_rps == CAP


def test_single_saturating_client_converges_below_capacity():
    """One greedy client settles strictly below capacity, above the floor.

    The noise-free fixed point is f·C/(f+1) ≈ 8.33, but the filter's
    asymmetric gains (α_dec chases congestion fast, α_inc is damped by
    the mean deviation) hold the time-average below it under constant
    overload — the conservative side, which is the property the service
    needs: total admitted load bounded away from capacity.
    """
    adm = make()
    offer(adm, "a", rate=8 * CAP, start=0.0, duration=10.0)
    late = offer(adm, "a", rate=8 * CAP, start=10.0, duration=5.0)
    admitted_rate = sum(d.admitted for d in late) / 5.0
    floor = PARAMS.grant_floor_fraction * CAP
    assert admitted_rate < 0.95 * CAP      # bounded: never at capacity
    assert admitted_rate > 2 * floor       # but not collapsed either
    # the client is never told more than the line and never less than
    # the floor, and it gets roughly what it is told
    grant = late[-1].allowed_rate_rps
    assert floor <= grant <= CAP
    assert admitted_rate <= grant * 1.2


def test_overload_is_shed_not_queued():
    """At 8x overload ~7/8 of attempts are rejected with a retry hint."""
    adm = make()
    offer(adm, "a", rate=8 * CAP, start=0.0, duration=10.0)
    late = offer(adm, "a", rate=8 * CAP, start=10.0, duration=5.0)
    rejected = [d for d in late if not d.admitted]
    assert len(rejected) > 0.7 * len(late)
    assert all(d.retry_after_s > 0 for d in rejected)


def test_retry_after_is_honest():
    """Waiting the advertised Retry-After earns the next admission."""
    adm = make()
    assert adm.try_admit("a", 0.0).admitted
    denied = adm.try_admit("a", 0.001)
    assert not denied.admitted
    retry_at = 0.001 + denied.retry_after_s
    assert adm.try_admit("a", retry_at + 1e-9).admitted
    # asking again *before* the hinted time still fails
    denied2 = adm.try_admit("a", 0.002)
    assert not denied2.admitted


def test_grant_never_falls_below_the_floor():
    adm = make()
    # hammer it for a long time at extreme overload
    offer(adm, "a", rate=50 * CAP, start=0.0, duration=30.0)
    floor = PARAMS.grant_floor_fraction * CAP
    assert adm.grant_rps >= floor
    assert adm.try_admit("a", 31.0).allowed_rate_rps >= floor


def test_two_clients_share_the_grant_equally():
    adm = make()
    for phase in range(2):
        start, dur = phase * 10.0, 10.0
        a = offer(adm, "a", rate=4 * CAP, start=start, duration=dur)
        b = offer(adm, "b", rate=4 * CAP, start=start + 0.001,
                  duration=dur)
    got_a = sum(d.admitted for d in a)
    got_b = sum(d.admitted for d in b)
    assert got_a == pytest.approx(got_b, rel=0.15)
    # total stays under capacity: n·f·C/(n·f+1) < C
    assert (got_a + got_b) / 10.0 < CAP


def test_disabled_mode_admits_everything():
    adm = make(enabled=False)
    decisions = offer(adm, "a", rate=20 * CAP, start=0.0, duration=2.0)
    assert all(d.admitted for d in decisions)
    assert all(d.allowed_rate_rps == CAP for d in decisions)
    assert adm.rejected_total == 0


def test_idle_gap_recovers_the_grant():
    adm = make()
    offer(adm, "a", rate=8 * CAP, start=0.0, duration=10.0)
    depressed = adm.grant_rps
    assert depressed < CAP
    # a long quiet period: residual folds at full capacity, MACR climbs
    adm.tick(10.0 + 1000 * PARAMS.interval)
    assert adm.grant_rps > depressed
    assert adm.grant_rps == CAP


def test_sustained_load_after_idle_gap_keeps_the_grant():
    """Submitting *through* several intervals after a gap stays healthy.

    Regression: the catch-up resync used to leave the interval start in
    the future, so post-gap admissions accumulated for ~catchup-cap
    intervals and then folded as one hugely negative residual, crashing
    MACR to the floor despite moderate load.
    """
    adm = make()
    adm.try_admit("a", 0.0)
    gap_end = 1000 * PARAMS.interval          # far past the catch-up cap
    # after the gap the interval clock is resynced to "now"
    adm.tick(gap_end)
    assert adm._interval_start == pytest.approx(gap_end)
    # offer half of capacity for many intervals: every request must be
    # admitted and the grant must never collapse toward the floor
    decisions = offer(adm, "a", rate=CAP / 2,
                      start=gap_end, duration=200 * PARAMS.interval)
    assert all(d.admitted for d in decisions)
    floor = PARAMS.grant_floor_fraction * CAP
    assert adm.grant_rps > 2 * floor
    # interval bookkeeping never runs ahead of the clock
    last_now = gap_end + 200 * PARAMS.interval
    assert adm._interval_start <= last_now + PARAMS.interval


def test_idle_clients_are_pruned():
    adm = make()
    adm.try_admit("a", 0.0)
    adm.try_admit("b", 0.0)
    assert adm.state()["clients"] == 2
    adm.try_admit("a", 200.0)   # far past the prune horizon
    assert adm.state()["clients"] == 1


def test_state_exposes_the_filter():
    adm = make()
    offer(adm, "a", rate=4 * CAP, start=0.0, duration=2.0)
    state = adm.state()
    assert state["capacity_rps"] == CAP
    assert 0.0 <= state["macr_rps"] <= CAP
    assert state["filter_updates"] > 0
    assert state["admitted_total"] + state["rejected_total"] > 0
