"""End-to-end gateway tests over real sockets.

Includes the parity acceptance test: results fetched through the HTTP
API must be bit-identical (golden probe digests) to a local
``run_tasks(jobs=1)`` execution of the same spec.
"""

import pytest

from repro.exec.fingerprint import task_fingerprint
from repro.exec.pool import run_tasks
from repro.exec.registry import all_scenarios
from repro.exec.spec import TaskSpec
from repro.serve.client import RateLimited, ServeError

SMALL = {"scenario": "atm.staggered", "params": {"duration": 0.02},
         "probes": ("s0.acr",)}


def test_healthz_reports_components(serve_app):
    server = serve_app()
    health = server.client().healthz()
    assert health["status"] == "ok"
    assert health["slots"] == 2
    assert health["admission"]["enabled"] is True
    assert health["admission"]["capacity_rps"] == 100.0
    assert health["queue_depth"] == 0
    assert health["cache"] == {"hits": 0, "misses": 0}


def test_scenarios_endpoint_mirrors_the_registry(serve_app):
    server = serve_app()
    served = {s["name"]: s for s in server.client().scenarios()}
    local = all_scenarios()
    assert set(served) == set(local)
    assert served["atm.staggered"]["kind"] == "atm"


def test_submit_poll_and_wait(serve_app):
    server = serve_app()
    client = server.client()
    accepted = client.submit(**SMALL)
    assert accepted["state"] in ("queued", "running")
    assert accepted["id"].startswith("j")
    final = client.wait(accepted["id"], deadline_s=60)
    assert final["state"] == "ok"
    assert final["cached"] is False
    assert final["fingerprint"]
    assert 0.0 < final["metrics"]["jain"] <= 1.0
    assert "s0.acr" in final["series"]
    # polling after completion still serves the stored result
    again = client.job(accepted["id"])
    assert again["probe_digests"] == final["probe_digests"]


def test_http_results_match_local_jobs1_execution(serve_app):
    """Acceptance: the gateway is a transport, not a perturbation."""
    server = serve_app()
    spec = TaskSpec(task_id="parity", scenario="atm.staggered",
                    params={"duration": 0.05}, seed=3,
                    probes=("s0.acr",))
    local = run_tasks([spec], jobs=1)[0]
    assert local.status == "ok"

    remote = server.client().submit_and_wait(
        spec.scenario, params=dict(spec.params), seed=spec.seed,
        probes=spec.probes, task_id=spec.task_id, deadline_s=60)
    assert remote["state"] == "ok"
    assert remote["probe_digests"] == local.payload["probe_digests"]
    assert remote["metrics"] == local.payload["metrics"]
    assert remote["series"] == local.payload["series"]
    # run_tasks(jobs=1, cache=None) leaves fingerprint unset; recompute
    assert remote["fingerprint"] == task_fingerprint(spec)


def test_resubmission_is_served_from_cache_bit_identically(serve_app):
    server = serve_app()
    client = server.client()
    first = client.submit_and_wait(**SMALL, deadline_s=60)
    second = client.submit_and_wait(**SMALL, deadline_s=60)
    assert first["cached"] is False
    assert second["cached"] is True
    assert second["fingerprint"] == first["fingerprint"]
    assert second["probe_digests"] == first["probe_digests"]
    assert server.client().healthz()["cache"]["hits"] >= 1


def test_unknown_scenario_is_400_with_the_known_names(serve_app):
    server = serve_app()
    with pytest.raises(ServeError) as err:
        server.client().submit("no.such.scenario")
    assert err.value.status == 400
    assert "atm.staggered" in err.value.message


def test_unknown_job_is_404(serve_app):
    server = serve_app()
    with pytest.raises(ServeError) as err:
        server.client().job("j999999")
    assert err.value.status == 404


def test_unknown_route_is_404_and_bad_method_405(serve_app):
    server = serve_app()
    client = server.client()
    response = client._request("GET", "/nope")
    assert response.status == 404
    response.read()
    response = client._request("DELETE", "/jobs")
    assert response.status == 405
    response.read()


def test_every_response_carries_the_explicit_rate(serve_app):
    server = serve_app()
    client = server.client()
    assert client.allowed_rate_rps is None
    client.healthz()
    assert client.allowed_rate_rps is not None
    assert 0.0 < client.allowed_rate_rps <= 100.0


def test_over_grant_submissions_get_429_with_retry_after(serve_app):
    server = serve_app(capacity_rps=2.0, burst=1.0, interval_s=0.25)
    client = server.client(client_id="greedy")
    accepted, limited = 0, None
    for _ in range(10):
        try:
            client.submit(**SMALL)
            accepted += 1
        except RateLimited as exc:
            limited = exc
            break
    assert accepted >= 1
    assert limited is not None, "burst of 10 was never rate-limited"
    assert limited.retry_after_s > 0
    assert limited.allowed_rate_rps <= 2.0
    assert limited.status == 429


def test_events_stream_follows_the_job_to_a_terminal_state(serve_app):
    server = serve_app()
    client = server.client()
    accepted = client.submit("tcp.many", params={"duration": 2.0})
    states = [s["state"] for s in client.events(accepted["id"])]
    assert states[-1] == "ok"
    assert states == sorted(set(states), key=states.index)  # no repeats
    versions = [s for s in states]
    assert len(versions) >= 1


def test_metrics_scrape_has_request_latency_queue_and_admission(
        serve_app):
    server = serve_app()
    client = server.client()
    client.submit_and_wait(**SMALL, deadline_s=60)
    text = client.metrics_text()
    assert "# TYPE repro_serve_requests_total counter" in text
    assert 'repro_serve_requests_total{method="POST"' in text
    assert "# TYPE repro_serve_request_seconds histogram" in text
    assert "# TYPE repro_serve_job_seconds histogram" in text
    assert "repro_serve_queue_depth" in text
    assert "repro_serve_macr_rps" in text
    assert "repro_serve_grant_rps" in text
    assert "repro_serve_admitted_total" in text


def test_job_failure_is_reported_not_fatal(serve_app):
    server = serve_app()
    client = server.client()
    final = client.submit_and_wait(
        "atm.staggered", params={"duration": -1.0}, deadline_s=60)
    assert final["state"] == "error"
    assert final["error"]
    # the server is still healthy afterwards
    assert server.client().healthz()["status"] == "ok"


def test_ablation_mode_never_rejects(serve_app):
    server = serve_app(admission=False, capacity_rps=2.0, burst=1.0)
    client = server.client(client_id="greedy")
    for _ in range(10):
        client.submit(**SMALL)       # would 429 under admission
    health = server.client().healthz()
    assert health["admission"]["enabled"] is False
    assert health["admission"]["rejected_total"] == 0
