"""Boot helpers: a real ServeApp on a background thread, port 0.

The app runs its own event loop in a daemon thread (signal handlers are
skipped off the main thread; shutdown goes through
``request_shutdown_threadsafe``), tests talk to it over real sockets
with :class:`ServeClient`, and every server is drained at teardown.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.serve.client import ServeClient
from repro.serve.server import ServeApp, ServeConfig


class RunningServer:
    """One booted gateway plus its loop thread."""

    def __init__(self, app: ServeApp, thread: threading.Thread):
        self.app = app
        self.thread = thread

    @property
    def port(self) -> int:
        assert self.app.port is not None
        return self.app.port

    def client(self, client_id: str = "test") -> ServeClient:
        return ServeClient("127.0.0.1", self.port, client_id=client_id,
                           timeout_s=60.0)

    def stop(self, timeout_s: float = 60.0) -> None:
        self.app.request_shutdown_threadsafe()
        self.thread.join(timeout_s)
        assert not self.thread.is_alive(), "server failed to drain"


@pytest.fixture
def serve_app(tmp_path):
    """Factory fixture: ``boot(**config_overrides) -> RunningServer``.

    Defaults are sized so admission never rejects functional tests
    (generous capacity and burst); overload tests override them.
    """
    running: list[RunningServer] = []

    def boot(**overrides) -> RunningServer:
        defaults = dict(
            port=0, slots=2, capacity_rps=100.0, burst=50.0,
            interval_s=0.1, queue_limit=64, job_timeout_s=60.0,
            cache_dir=str(tmp_path / "cache"),
            manifest_path=str(tmp_path / "serve_manifest.json"))
        defaults.update(overrides)
        app = ServeApp(ServeConfig(**defaults))
        thread = threading.Thread(
            target=lambda: asyncio.run(app.serve()), daemon=True)
        thread.start()
        assert app.ready.wait(30), "server did not come up"
        server = RunningServer(app, thread)
        running.append(server)
        return server

    yield boot
    for server in running:
        if server.thread.is_alive():
            server.stop()
