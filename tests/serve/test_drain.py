"""Graceful drain: SIGTERM/shutdown finishes in-flight work, rejects new.

Two layers: an in-process test against :class:`ServeApp` (fast, precise
assertions on the store and manifest) and a subprocess acceptance test
that sends a real SIGTERM to ``python -m repro serve``.
"""

import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serve.client import ServeClient, ServeError

# atm.staggered at duration=0.6 runs ~2 s of wall time: long enough to
# be reliably in flight when the drain starts, short enough for CI.
LONG = {"scenario": "atm.staggered", "params": {"duration": 0.6}}


def test_drain_completes_in_flight_and_rejects_new(serve_app, tmp_path):
    manifest = tmp_path / "serve_manifest.json"
    server = serve_app(slots=1, manifest_path=str(manifest))
    client = server.client()
    accepted = client.submit(**LONG)

    # wait until the job is actually running, then start the drain
    deadline = time.monotonic() + 30
    while client.job(accepted["id"])["state"] == "queued":
        assert time.monotonic() < deadline, "job never started"
        time.sleep(0.01)
    server.app.request_shutdown_threadsafe()

    # the existing keep-alive connection is served during the drain,
    # but new submissions are refused with 503 + Retry-After
    with pytest.raises(ServeError) as err:
        client.submit(**LONG)
    assert err.value.status == 503
    health = client.healthz()
    assert health["status"] == "draining"

    server.stop(timeout_s=60)

    # the in-flight job was finished, not killed
    job = server.app.store.get(accepted["id"])
    assert job is not None
    assert job.state == "ok"
    assert server.app.store.counts().get("ok", 0) == 1

    # the obs manifest was flushed on the way out
    data = json.loads(manifest.read_text())
    assert data["command"] == "repro serve"
    assert data["execution"]["jobs"].get("ok") == 1
    assert data["execution"]["admission"]["enabled"] is True


def test_sigterm_drains_a_real_server_process(tmp_path):
    """Acceptance: boot ``repro serve``, SIGTERM mid-job, exit 0."""
    manifest = tmp_path / "manifest.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--slots", "1", "--cache", str(tmp_path / "cache"),
         "--manifest", str(manifest)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env)
    try:
        line = proc.stdout.readline()
        match = re.search(r"http://([\d.]+):(\d+)", line)
        assert match, f"no listening line: {line!r}"
        host, port = match.group(1), int(match.group(2))

        client = ServeClient(host, port, client_id="drain-test")
        accepted = client.submit(**LONG)
        deadline = time.monotonic() + 30
        while client.job(accepted["id"])["state"] == "queued":
            assert time.monotonic() < deadline, "job never started"
            time.sleep(0.01)
        client.close()

        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=60)
        assert code == 0

        data = json.loads(manifest.read_text())
        assert data["command"] == "repro serve"
        assert data["execution"]["jobs"].get("ok") == 1
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
