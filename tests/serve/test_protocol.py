"""Wire-layer unit tests: framing and the submission schema, no socket."""

import asyncio
import json

import pytest

from repro.exec.registry import all_scenarios
from repro.serve.protocol import (LAST_CHUNK, MAX_BODY_BYTES,
                                  ProtocolError, chunk, chunked_head,
                                  error_body, json_body,
                                  parse_submission, read_request,
                                  render_response, spec_from_submission)


def parse(raw: bytes):
    """Run read_request over an in-memory StreamReader."""
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)
    return asyncio.run(go())


# ----------------------------------------------------------------------
# request parsing
# ----------------------------------------------------------------------

def test_parses_request_line_headers_query_and_body():
    body = b'{"scenario": "atm.staggered"}'
    raw = (b"POST /jobs?verbose=1 HTTP/1.1\r\n"
           b"Host: x\r\n"
           b"Content-Type: application/json\r\n"
           b"Content-Length: " + str(len(body)).encode() + b"\r\n"
           b"\r\n" + body)
    req = parse(raw)
    assert req.method == "POST"
    assert req.path == "/jobs"
    assert req.query == {"verbose": ["1"]}
    assert req.headers["content-type"] == "application/json"
    assert req.json() == {"scenario": "atm.staggered"}
    assert not req.wants_close


def test_eof_before_any_request_is_none():
    assert parse(b"") is None


def test_malformed_request_line_is_400():
    with pytest.raises(ProtocolError) as err:
        parse(b"NONSENSE\r\n\r\n")
    assert err.value.status == 400


def test_bad_content_length_is_400():
    raw = b"POST /jobs HTTP/1.1\r\nContent-Length: nope\r\n\r\n"
    with pytest.raises(ProtocolError) as err:
        parse(raw)
    assert err.value.status == 400


def test_truncated_body_is_400():
    raw = b"POST /jobs HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort"
    with pytest.raises(ProtocolError) as err:
        parse(raw)
    assert err.value.status == 400


def test_oversized_body_is_413():
    raw = (b"POST /jobs HTTP/1.1\r\nContent-Length: "
           + str(MAX_BODY_BYTES + 1).encode() + b"\r\n\r\n")
    with pytest.raises(ProtocolError) as err:
        parse(raw)
    assert err.value.status == 413


def test_long_header_line_is_431():
    raw = (b"GET / HTTP/1.1\r\nX-Pad: " + b"x" * 10_000 + b"\r\n\r\n")
    with pytest.raises(ProtocolError) as err:
        parse(raw)
    assert err.value.status == 431


def test_header_line_over_stream_limit_is_431():
    # past the StreamReader's own 64 KiB limit readline raises
    # ValueError instead of returning the line; still must map to 431
    raw = (b"GET / HTTP/1.1\r\nX-Pad: " + b"x" * (1 << 17) + b"\r\n\r\n")
    with pytest.raises(ProtocolError) as err:
        parse(raw)
    assert err.value.status == 431


def test_connection_close_is_honoured():
    req = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
    assert req.wants_close


def test_non_json_body_is_400():
    raw = b"POST /jobs HTTP/1.1\r\nContent-Length: 3\r\n\r\n{{{"
    req = parse(raw)
    with pytest.raises(ProtocolError) as err:
        req.json()
    assert err.value.status == 400


# ----------------------------------------------------------------------
# response rendering
# ----------------------------------------------------------------------

def test_render_response_frames_body_and_headers():
    raw = render_response(202, json_body({"id": "j1"}),
                          headers={"X-Allowed-Rate": "5.0"})
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode().split("\r\n")
    assert lines[0] == "HTTP/1.1 202 Accepted"
    assert f"Content-Length: {len(body)}" in lines
    assert "X-Allowed-Rate: 5.0" in lines
    assert json.loads(body) == {"id": "j1"}


def test_render_response_close_flag():
    raw = render_response(503, error_body(503, "draining"), close=True)
    assert b"Connection: close" in raw


def test_chunked_stream_framing():
    head = chunked_head(headers={"X-Allowed-Rate": "1.0"})
    assert b"Transfer-Encoding: chunked" in head
    piece = chunk(b"hello\n")
    assert piece == b"6\r\nhello\n\r\n"
    assert LAST_CHUNK == b"0\r\n\r\n"


# ----------------------------------------------------------------------
# submission schema
# ----------------------------------------------------------------------

def scenarios():
    return all_scenarios()


def test_valid_submission_normalises():
    fields = parse_submission(
        {"scenario": "atm.staggered", "params": {"duration": 0.02},
         "seed": 7, "probes": ["s0.acr"]}, scenarios())
    spec = spec_from_submission(fields, default_task_id="serve-1")
    assert spec.task_id == "serve-1"
    assert spec.scenario == "atm.staggered"
    assert spec.params == {"duration": 0.02}
    assert spec.seed == 7
    assert spec.probes == ("s0.acr",)


def test_explicit_task_id_wins():
    fields = parse_submission(
        {"scenario": "atm.staggered", "task_id": "mine"}, scenarios())
    assert spec_from_submission(fields, "serve-1").task_id == "mine"


def test_unknown_scenario_lists_the_registry():
    with pytest.raises(ProtocolError) as err:
        parse_submission({"scenario": "nope"}, scenarios())
    assert err.value.status == 400
    for name in scenarios():
        assert name in err.value.message


@pytest.mark.parametrize("payload", [
    "not a dict",
    {},                                        # no scenario
    {"scenario": ""},
    {"scenario": "atm.staggered", "bogus": 1},
    {"scenario": "atm.staggered", "params": [1, 2]},
    {"scenario": "atm.staggered", "seed": "seven"},
    {"scenario": "atm.staggered", "probes": "s0.acr"},
    {"scenario": "atm.staggered", "probes": [1]},
    {"scenario": "atm.staggered", "task_id": ""},
    {"scenario": "atm.staggered", "params": {"f": object()}},
])
def test_invalid_submissions_are_400(payload):
    with pytest.raises(ProtocolError) as err:
        parse_submission(payload, scenarios())
    assert err.value.status == 400
