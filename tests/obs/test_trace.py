"""Unit tests for the trace bus and the JSONL trace format."""

import json

import pytest

from repro.obs import (CATEGORIES, TRACE_SCHEMA, TRACE_VERSION, Tracer,
                       read_trace_jsonl, summarize_events, trace_header,
                       validate_trace_jsonl, write_trace_jsonl)
from repro.obs.trace import event_dicts


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------

def test_default_tracer_records_everything():
    t = Tracer()
    assert t.categories is None
    for cat in CATEGORIES:
        assert t.enabled(cat)
        assert t.gate(cat) is t


def test_category_subset_gates_the_rest():
    t = Tracer(categories=["port", "tcp"])
    assert t.gate("port") is t
    assert t.gate("tcp") is t
    assert t.gate("engine") is None
    assert not t.enabled("macr")


def test_unknown_category_rejected_loudly():
    with pytest.raises(ValueError, match="unknown trace categories"):
        Tracer(categories=["prot"])  # typo of "port"


def test_emit_records_in_order():
    t = Tracer()
    t.emit(0.0, "port.enqueue", "S1->S2", vc="s0", qlen=1)
    t.emit(0.5, "port.drop", "S1->S2", vc="s1", qlen=9, drops=1)
    assert len(t) == 2
    assert t.events[0] == (0.0, "port.enqueue", "S1->S2",
                           {"vc": "s0", "qlen": 1})
    assert t.kinds() == {"port.enqueue": 1, "port.drop": 1}
    t.clear()
    assert len(t) == 0


def test_meta_is_copied_not_aliased():
    meta = {"scenario": "staggered"}
    t = Tracer(meta=meta)
    meta["scenario"] = "mutated"
    assert t.meta == {"scenario": "staggered"}


# ----------------------------------------------------------------------
# JSONL round-trip
# ----------------------------------------------------------------------

def tracer_with_events():
    t = Tracer(categories=["port", "macr"], meta={"run": "unit"})
    t.emit(0.001, "port.enqueue", "S1->S2", vc="s0", qlen=1)
    t.emit(0.002, "macr.update", "macr[S1->S2]", macr=10.0,
           residual=150.0, dev=0.5)
    t.emit(0.002, "port.enqueue", "S1->S2", vc="s1", qlen=2)
    return t


def test_header_carries_schema_and_sorted_categories():
    header = trace_header(tracer_with_events(), meta={"extra": 1})
    assert header["schema"] == TRACE_SCHEMA
    assert header["version"] == TRACE_VERSION
    assert header["events"] == 3
    assert header["categories"] == ["macr", "port"]
    assert header["meta"] == {"run": "unit", "extra": 1}


def test_write_read_roundtrip(tmp_path):
    t = tracer_with_events()
    path = str(tmp_path / "trace.jsonl")
    write_trace_jsonl(path, t)
    header, events = read_trace_jsonl(path)
    assert header["events"] == 3
    assert events == list(event_dicts(t))
    assert validate_trace_jsonl(path) == []


def test_read_empty_file_raises(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    with pytest.raises(ValueError, match="empty trace"):
        read_trace_jsonl(str(path))


# ----------------------------------------------------------------------
# validation catches corruption
# ----------------------------------------------------------------------

def write_lines(tmp_path, *objs):
    path = tmp_path / "trace.jsonl"
    path.write_text("".join(json.dumps(o) + "\n" for o in objs))
    return str(path)


def good_header(n):
    return {"schema": TRACE_SCHEMA, "version": TRACE_VERSION, "events": n,
            "categories": None}


def good_event(ts):
    return {"ts": ts, "kind": "port.enqueue", "comp": "p", "fields": {}}


def test_validate_flags_wrong_schema_and_version(tmp_path):
    path = write_lines(tmp_path,
                       {"schema": "other", "version": 99, "events": 0})
    problems = validate_trace_jsonl(path)
    assert any("schema" in p for p in problems)
    assert any("version" in p for p in problems)


def test_validate_flags_event_count_mismatch(tmp_path):
    path = write_lines(tmp_path, good_header(5), good_event(0.0))
    assert any("declares 5 events" in p
               for p in validate_trace_jsonl(path))


def test_validate_flags_decreasing_timestamps(tmp_path):
    path = write_lines(tmp_path, good_header(2),
                       good_event(1.0), good_event(0.5))
    assert any("decreases" in p for p in validate_trace_jsonl(path))


def test_validate_flags_missing_and_mistyped_keys(tmp_path):
    bad = {"ts": True, "kind": "x.y", "comp": "p", "fields": {}}
    path = write_lines(tmp_path, good_header(2),
                       {"kind": "x.y", "comp": "p", "fields": {}}, bad)
    problems = validate_trace_jsonl(path)
    # bool masquerading as a timestamp is rejected too
    assert sum("bad or missing 'ts'" in p for p in problems) == 2


def test_validate_flags_non_object_event(tmp_path):
    path = write_lines(tmp_path, good_header(1), [1, 2, 3])
    assert any("not a JSON object" in p
               for p in validate_trace_jsonl(path))


def test_validate_unreadable_file(tmp_path):
    assert validate_trace_jsonl(str(tmp_path / "missing.jsonl")) != []


# ----------------------------------------------------------------------
# summaries
# ----------------------------------------------------------------------

def test_summarize_events():
    summary = summarize_events(event_dicts(tracer_with_events()))
    assert summary["events"] == 3
    assert summary["first_ts"] == 0.001
    assert summary["last_ts"] == 0.002
    assert summary["kinds"] == {"macr.update": 1, "port.enqueue": 2}
    assert summary["components"] == {"S1->S2": 2, "macr[S1->S2]": 1}


def test_summarize_empty():
    summary = summarize_events([])
    assert summary["events"] == 0
    assert summary["first_ts"] is None and summary["last_ts"] is None
