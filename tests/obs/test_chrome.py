"""Unit tests for the Chrome trace_event converter."""

import json

from repro.obs import chrome_events, chrome_trace, write_chrome_trace
from repro.obs.chrome import COUNTER_FIELDS


def ev(ts, kind, comp, **fields):
    return {"ts": ts, "kind": kind, "comp": comp, "fields": fields}


def test_instant_events_scaled_to_microseconds():
    out = chrome_events([ev(0.0025, "switch.mark", "S1", vc="s0")])
    meta, instant = out
    assert meta == {"ph": "M", "name": "thread_name", "pid": 1, "tid": 1,
                    "args": {"name": "S1"}}
    assert instant["ph"] == "i"
    assert instant["ts"] == 2500.0
    assert instant["name"] == "switch.mark"
    assert instant["cat"] == "switch"
    assert instant["args"] == {"vc": "s0"}


def test_one_thread_per_component_named_once():
    out = chrome_events([ev(0.0, "switch.mark", "A"),
                         ev(1.0, "switch.mark", "B"),
                         ev(2.0, "switch.mark", "A")])
    metas = [e for e in out if e["ph"] == "M"]
    assert [m["args"]["name"] for m in metas] == ["A", "B"]
    tids = [e["tid"] for e in out if e["ph"] == "i"]
    assert tids == [1, 2, 1]


def test_counter_track_for_scalar_kinds():
    out = chrome_events([ev(0.001, "port.enqueue", "p", vc="s0", qlen=7)])
    counters = [e for e in out if e["ph"] == "C"]
    assert counters == [{"name": "p qlen", "ph": "C", "ts": 1000.0,
                         "pid": 1, "args": {"qlen": 7}}]


def test_no_counter_without_the_field_or_mapping():
    out = chrome_events([ev(0.0, "port.enqueue", "p", vc="s0"),
                         ev(0.0, "engine.event", "sim", fn="f")])
    assert [e for e in out if e["ph"] == "C"] == []


def test_counter_fields_name_real_kinds():
    # the mapping must track the emit points; a stale key silently
    # produces no counter track, so pin the exact set
    assert COUNTER_FIELDS == {"port.enqueue": "qlen", "port.drop": "qlen",
                              "router.drop": "qlen", "macr.update": "macr",
                              "tcp.timeout": "cwnd",
                              "fluid.step": ("macr", "queue", "offered")}


def test_fluid_step_fans_out_to_multiple_counter_tracks():
    out = chrome_events([ev(0.002, "fluid.step", "T1", macr=12.5,
                            queue=40.0, offered=150.0, grant=14.0)])
    counters = [e for e in out if e["ph"] == "C"]
    assert [(c["name"], c["args"]) for c in counters] == [
        ("T1 macr", {"macr": 12.5}),
        ("T1 queue", {"queue": 40.0}),
        ("T1 offered", {"offered": 150.0}),
    ]


def test_fluid_step_skips_absent_fields():
    out = chrome_events([ev(0.0, "fluid.step", "T1", macr=1.0)])
    counters = [e for e in out if e["ph"] == "C"]
    assert [c["name"] for c in counters] == ["T1 macr"]


def test_chrome_trace_wrapper_and_writer(tmp_path):
    events = [ev(0.0, "macr.update", "m", macr=10.0)]
    trace = chrome_trace(events)
    assert trace["displayTimeUnit"] == "ms"
    assert trace["traceEvents"] == chrome_events(events)

    path = str(tmp_path / "trace.chrome.json")
    write_chrome_trace(path, events)
    with open(path) as fh:
        assert json.load(fh) == trace
