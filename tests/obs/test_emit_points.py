"""Integration tests for the simulator's trace emit points.

These drive real scenarios with a live :class:`Tracer` and assert the
wired-in emit sites actually fire — the complement of the golden-trace
test, which asserts they change nothing.
"""

import pytest

from repro.atm import Cell, OutputPort
from repro.core import PhantomAlgorithm
from repro.obs import Tracer
from repro.scenarios import drop_tail_policy, many_flows, staggered_start
from repro.sim import Simulator

from tests.atm.test_link import Collector


@pytest.fixture(scope="module")
def atm_trace():
    tracer = Tracer()
    staggered_start(PhantomAlgorithm, n_sessions=2, duration=0.1,
                    tracer=tracer)
    return tracer


@pytest.fixture(scope="module")
def tcp_trace():
    tracer = Tracer()
    # a small drop-tail buffer forces drops, dupacks and recoveries
    many_flows(drop_tail_policy(buffer_packets=20), n_flows=4,
               duration=4.0, tracer=tracer)
    return tracer


def test_atm_run_hits_every_atm_emit_point(atm_trace):
    kinds = atm_trace.kinds()
    for kind in ("engine.schedule", "engine.event", "port.enqueue",
                 "switch.mark", "macr.update"):
        assert kinds[kind] > 0, kind


def test_atm_trace_timestamps_never_decrease(atm_trace):
    times = [ts for ts, _kind, _comp, _fields in atm_trace.events]
    assert all(a <= b for a, b in zip(times, times[1:]))


def test_macr_updates_carry_filter_state(atm_trace):
    macr_events = [e for e in atm_trace.events if e[1] == "macr.update"]
    for _ts, _kind, comp, fields in macr_events:
        assert set(fields) == {"macr", "residual", "dev"}
        # residual capacity goes negative under overload; the MACR
        # estimate itself stays a rate
        assert fields["macr"] >= 0


def test_switch_marks_record_er_rewrite(atm_trace):
    marks = [e for e in atm_trace.events if e[1] == "switch.mark"]
    assert marks
    for _ts, _kind, _comp, fields in marks:
        # Phantom only ever reduces the advertised ER
        assert fields["er_out"] <= fields["er_in"]


def test_tcp_run_hits_router_and_reno_emit_points(tcp_trace):
    kinds = tcp_trace.kinds()
    assert kinds["router.drop"] > 0
    assert kinds["tcp.fast_retransmit"] > 0
    assert kinds["tcp.recovery_exit"] > 0


def test_router_drops_name_flow_and_policy(tcp_trace):
    drops = [e for e in tcp_trace.events if e[1] == "router.drop"]
    for _ts, _kind, _comp, fields in drops:
        assert set(fields) == {"flow", "policy", "qlen", "drops"}
        assert fields["policy"] == "drop-tail"


def test_category_filter_drops_other_emitters():
    tracer = Tracer(categories=["macr"])
    staggered_start(PhantomAlgorithm, n_sessions=2, duration=0.05,
                    tracer=tracer)
    kinds = tracer.kinds()
    assert kinds["macr.update"] > 0
    assert set(kinds) == {"macr.update"}


# ----------------------------------------------------------------------
# unit-level: OutputPort enqueue/drop emission
# ----------------------------------------------------------------------

def overloaded_port(tracer):
    sim = Simulator()
    sim.tracer = tracer
    port = OutputPort(sim, "p", rate_mbps=150.0, sink=Collector(sim),
                      buffer_cells=2)
    for i in range(6):
        port.receive(Cell(vc="A", seq=i))
    sim.run()
    return port


def test_port_emits_enqueues_and_drops():
    tracer = Tracer()
    port = overloaded_port(tracer)
    kinds = tracer.kinds()
    assert port.drops > 0
    assert kinds["port.drop"] == port.drops
    assert kinds["port.enqueue"] == port.arrivals - port.drops
    drop = next(e for e in tracer.events if e[1] == "port.drop")
    assert drop[3]["vc"] == "A"
    assert drop[3]["qlen"] == port.buffer_cells


def test_disabled_port_category_emits_nothing():
    tracer = Tracer(categories=["switch"])
    port = overloaded_port(tracer)
    assert port.drops > 0  # the run itself is unchanged
    assert len(tracer) == 0
