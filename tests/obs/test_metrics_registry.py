"""Unit tests for the metrics registry and its exporters."""

import pytest

from repro.core import PhantomAlgorithm
from repro.obs import MetricsRegistry, registry_from_run
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram
from repro.scenarios import drop_tail_policy, many_flows, staggered_start
from repro.sim import Probe


# ----------------------------------------------------------------------
# metric primitives
# ----------------------------------------------------------------------

def test_counter_accumulates_and_rejects_negative():
    r = MetricsRegistry()
    c = r.counter("repro_x_total", port="p")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1.0)


def test_gauge_last_write_wins():
    r = MetricsRegistry()
    g = r.gauge("repro_x")
    g.set(5.0)
    g.set(-2.0)
    assert g.value == -2.0


def test_histogram_bucket_edges_are_inclusive():
    h = Histogram(buckets=(1.0, 10.0))
    for v in (0.5, 1.0, 5.0, 10.0, 99.0):
        h.observe(v)
    # le="1" holds 0.5 and the boundary value 1.0; le="10" adds 5 and 10;
    # 99 overflows
    assert h.counts == [2, 2, 1]
    assert h.cumulative() == [2, 4, 5]
    assert h.count == 5
    assert h.sum == pytest.approx(115.5)


def test_histogram_needs_buckets():
    with pytest.raises(ValueError):
        Histogram(buckets=())


def test_same_name_and_labels_share_one_metric():
    r = MetricsRegistry()
    assert r.counter("repro_x_total", vc="a") is (
        r.counter("repro_x_total", vc="a"))
    assert r.counter("repro_x_total", vc="a") is not (
        r.counter("repro_x_total", vc="b"))


def test_kind_mismatch_raises():
    r = MetricsRegistry()
    r.counter("repro_x")
    with pytest.raises(TypeError, match="is a counter, not a gauge"):
        r.gauge("repro_x")


def test_register_probe_folds_series_in():
    r = MetricsRegistry()
    p = Probe("rate")
    for t, v in [(0.0, 1.0), (1.0, 3.0), (2.0, 2.0)]:
        p.record(t, v)
    r.register_probe("repro_rate_mbps", p, vc="s0")
    summary = r.summary()
    assert summary['repro_rate_mbps_samples_total{vc="s0"}'] == 3
    assert summary['repro_rate_mbps_last{vc="s0"}'] == 2.0
    assert summary['repro_rate_mbps_count{vc="s0"}'] == 3
    assert summary['repro_rate_mbps_sum{vc="s0"}'] == 6.0


def test_register_empty_probe_records_zero_samples():
    r = MetricsRegistry()
    r.register_probe("repro_rate_mbps", Probe("rate"), vc="s0")
    assert r.summary() == {'repro_rate_mbps_samples_total{vc="s0"}': 0.0}


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------

def small_registry():
    r = MetricsRegistry()
    r.counter("repro_drops_total", port="p").inc(4)
    r.gauge("repro_acr_mbps", vc="s0").set(37.5)
    h = r.histogram("repro_queue_cells", buckets=(1.0, 10.0), port="p")
    for v in (0.0, 5.0, 50.0):
        h.observe(v)
    return r


def test_prometheus_text_format():
    text = small_registry().prometheus_text()
    lines = text.splitlines()
    assert "# TYPE repro_drops_total counter" in lines
    assert 'repro_drops_total{port="p"} 4' in lines
    assert 'repro_acr_mbps{vc="s0"} 37.5' in lines
    assert 'repro_queue_cells_bucket{port="p",le="1"} 1' in lines
    assert 'repro_queue_cells_bucket{port="p",le="10"} 2' in lines
    assert 'repro_queue_cells_bucket{port="p",le="+Inf"} 3' in lines
    assert 'repro_queue_cells_sum{port="p"} 55' in lines
    assert 'repro_queue_cells_count{port="p"} 3' in lines
    assert text.endswith("\n")
    assert MetricsRegistry().prometheus_text() == ""


def test_to_json_dump():
    dump = small_registry().to_json()
    families = {f["name"]: f for f in dump["metrics"]}
    assert families["repro_drops_total"]["type"] == "counter"
    hist = families["repro_queue_cells"]["series"][0]
    assert hist["labels"] == {"port": "p"}
    assert hist["buckets"] == [1.0, 10.0]
    assert hist["counts"] == [1, 1, 1]
    assert hist["count"] == 3


def test_default_buckets_are_sorted():
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


# ----------------------------------------------------------------------
# histogram edge cases the serve latency tracking relies on
# ----------------------------------------------------------------------

def test_empty_histogram_exports_zero_rows():
    r = MetricsRegistry()
    r.histogram("repro_latency_seconds", buckets=(0.1, 1.0), route="/x")
    lines = r.prometheus_text().splitlines()
    assert 'repro_latency_seconds_bucket{route="/x",le="0.1"} 0' in lines
    assert 'repro_latency_seconds_bucket{route="/x",le="+Inf"} 0' in lines
    assert 'repro_latency_seconds_sum{route="/x"} 0' in lines
    assert 'repro_latency_seconds_count{route="/x"} 0' in lines


def test_inf_bucket_counts_overflow_observations():
    h = Histogram(buckets=(1.0, 10.0))
    for v in (0.5, 5.0, 100.0, 1e9, float("inf")):
        h.observe(v)
    # +Inf row is the total count: overflow observations (and literal
    # inf) land there and nowhere else
    assert h.cumulative() == [1, 2, 5]
    assert h.count == 5
    assert h.counts[-1] == 3


def test_prometheus_label_values_are_escaped():
    r = MetricsRegistry()
    r.counter("repro_odd_total", port='he said "hi"\\\n').inc()
    line = [l for l in r.prometheus_text().splitlines()
            if l.startswith("repro_odd_total")][0]
    assert line == ('repro_odd_total{port="he said \\"hi\\"\\\\\\n"} 1')
    # still a single physical line — the newline is escaped, not emitted
    assert "\n" not in line


# ----------------------------------------------------------------------
# registration from run handles
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def atm_registry():
    run = staggered_start(PhantomAlgorithm, n_sessions=2, duration=0.05)
    return registry_from_run(run)


@pytest.fixture(scope="module")
def tcp_registry():
    run = many_flows(drop_tail_policy(), n_flows=2, duration=2.0)
    return registry_from_run(run)


def test_atm_run_registers_sessions_and_trunks(atm_registry):
    summary = atm_registry.summary()
    assert summary["repro_sim_time_seconds"] == pytest.approx(0.05)
    assert summary["repro_sim_executed_events_total"] > 0
    assert summary['repro_cells_sent_total{vc="s0"}'] > 0
    assert summary['repro_acr_mbps{vc="s1"}'] > 0
    assert any(key.startswith("repro_port_arrivals_total")
               for key in summary)
    assert any(key.startswith("repro_macr_mbps_samples_total")
               for key in summary)


def test_tcp_run_registers_flows_and_trunks(tcp_registry):
    summary = tcp_registry.summary()
    assert summary['repro_bytes_received_total{flow="f0"}'] > 0
    assert summary['repro_segments_sent_total{flow="f1"}'] > 0
    assert any(key.startswith("repro_port_queue_packets_samples_total")
               for key in summary)


def test_registry_exports_are_consistent(atm_registry):
    # every scalar in the manifest summary appears in the text exposition
    text = atm_registry.prometheus_text()
    for name in ("repro_sim_time_seconds", "repro_cells_sent_total"):
        assert name in text


def test_registry_from_run_rejects_other_types():
    with pytest.raises(TypeError, match="unsupported run handle"):
        registry_from_run(object())
