"""`repro obs health` exit codes and `repro obs diff` across every
manifest-producing command (atm / tcp / perf / fluid / suite)."""

import json

import pytest

from repro.cli import main
from repro.obs import (HEALTH_SCHEMA, SUITE_HEALTH_SCHEMA,
                       validate_manifest)
from repro.obs.cli import _parse_overrides


@pytest.fixture(scope="module")
def manifests(tmp_path_factory):
    """One manifest of every kind, built by the real CLI commands."""
    root = tmp_path_factory.mktemp("manifests")
    paths = {name: str(root / f"{name}.manifest.json")
             for name in ("atm_a", "atm_b", "tcp", "perf", "fluid",
                          "suite")}
    for label in ("atm_a", "atm_b"):
        assert main(["atm", "--scenario", "staggered",
                     "--duration", "0.15",
                     "--manifest", paths[label]]) == 0
    assert main(["tcp", "--scenario", "many", "--policy", "drop-tail",
                 "--duration", "3", "--manifest", paths["tcp"]]) == 0
    bench = root / "bench.json"
    assert main(["perf", "--workload", "e11_tcp", "--scale", "0.15",
                 "--output", str(bench)]) == 0
    paths["perf"] = str(root / "bench.manifest.json")
    assert main(["fluid", "run", "--scenario", "staggered",
                 "--duration", "0.15",
                 "--manifest", paths["fluid"]]) == 0
    assert main(["suite", "--scale", "0.05", "--experiments", "E01",
                 "-j", "1", "--no-cache", "--health",
                 "--cache-dir", str(root / "cache"),
                 "--manifest", paths["suite"]]) == 0
    return {name: (path, json.loads(open(path).read()))
            for name, (path) in paths.items()}


def test_every_kind_validates(manifests):
    for name, (_path, manifest) in manifests.items():
        assert validate_manifest(manifest) == [], name


def test_run_manifests_carry_health_reports(manifests):
    for name in ("atm_a", "tcp", "fluid"):
        health = manifests[name][1]["health"]
        assert health["schema"] == HEALTH_SCHEMA
        assert health["verdict"] == "pass", name
    # perf measures wall time, not invariants: no health block
    assert "health" not in manifests["perf"][1]


def test_suite_manifest_aggregates_health(manifests):
    manifest = manifests["suite"][1]
    health = manifest["health"]
    assert health["schema"] == SUITE_HEALTH_SCHEMA
    assert health["verdict"] == "pass"
    assert health["runs"] == 1 and health["violated"] == {}
    assert [t["health"] for t in manifest["tasks"]] == ["pass"]


def test_same_config_diffs_clean(manifests, capsys):
    assert main(["obs", "diff", manifests["atm_a"][0],
                 manifests["atm_b"][0]]) == 0
    assert "manifests match" in capsys.readouterr().out


@pytest.mark.parametrize("a,b", [("atm_a", "tcp"), ("tcp", "fluid"),
                                 ("perf", "suite"), ("atm_a", "perf")])
def test_cross_kind_diffs_are_reported(manifests, capsys, a, b):
    assert main(["obs", "diff", manifests[a][0], manifests[b][0]]) == 1
    out = capsys.readouterr().out
    assert "command:" in out


def test_health_regression_shows_up_in_diff(manifests, tmp_path, capsys):
    path, manifest = manifests["atm_a"]
    sick = json.loads(json.dumps(manifest))
    sick["health"]["verdict"] = "violated"
    sick["health"]["checks"][0]["verdict"] = "violated"
    sick_path = tmp_path / "sick.json"
    sick_path.write_text(json.dumps(sick))
    assert main(["obs", "diff", path, str(sick_path)]) == 1
    out = capsys.readouterr().out
    assert "health.verdict: 'pass' != 'violated'" in out


# ----------------------------------------------------------------------
# repro obs health: exit codes and overrides
# ----------------------------------------------------------------------

def test_obs_health_pass_exits_zero(tmp_path, capsys):
    out_path = tmp_path / "health.json"
    assert main(["obs", "health", "--scenario", "atm.staggered",
                 "--set", "duration=0.15",
                 "--output", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "verdict  : pass" in out
    assert "oracle   : s0=68.18 s1=68.18 Mb/s" in out
    report = json.loads(out_path.read_text())
    assert report["schema"] == HEALTH_SCHEMA
    assert report["verdict"] == "pass"


def test_obs_health_violation_exits_one(capsys):
    # an absurd half-cell queue bound forces a queue_bound violation
    assert main(["obs", "health", "--scenario", "atm.staggered",
                 "--set", "duration=0.1",
                 "--queue-bound", "0.5"]) == 1
    out = capsys.readouterr().out
    assert "verdict  : violated" in out
    assert "first violation at t=" in out


def test_obs_health_gated_scenario_still_passes(capsys):
    # on/off has no oracle, but conservation and queues are judged
    assert main(["obs", "health", "--scenario", "atm.onoff",
                 "--set", "duration=0.1"]) == 0
    out = capsys.readouterr().out
    assert "verdict  : pass" in out
    assert "no steady greedy" in out


def test_parse_overrides_nesting_and_json_values():
    params = _parse_overrides(["duration=0.2",
                               "algorithm=erica",
                               "algorithm_params.utilization_factor=2",
                               "algorithm_params.use_deviation=true"])
    assert params == {"duration": 0.2, "algorithm": "erica",
                      "algorithm_params": {"utilization_factor": 2,
                                           "use_deviation": True}}
    with pytest.raises(SystemExit):
        _parse_overrides(["not-a-pair"])
    with pytest.raises(SystemExit):
        _parse_overrides(["duration.sub=1", "duration=2"][::-1])
