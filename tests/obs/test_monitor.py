"""Streaming invariant monitors: checks, watches, and bit-identity."""

import math

import pytest

from repro.core import PhantomAlgorithm
from repro.obs import Tracer
from repro.obs.monitor import (DEFAULT_EPS, NOT_APPLICABLE, PASS,
                               VANDALORE_SAFETY, VIOLATED, DropWatch,
                               QueueWatch, attach, check,
                               conservation_check, convergence_check,
                               detach, fairness_gap_check,
                               oscillation_check, queue_bound_check,
                               vandalore_bound)
from repro.scenarios import staggered_start
from repro.sim import units
from repro.sim.probe import Probe


def make_probe(samples, name="p"):
    probe = Probe(name)
    for t, v in samples:
        probe.record(t, v)
    return probe


# ----------------------------------------------------------------------
# check shape and the Vandalore bound
# ----------------------------------------------------------------------

def test_check_shape_and_verdict_vocabulary():
    out = check("conservation", PASS, evidence={"k": 1})
    assert out == {"name": "conservation", "verdict": "pass",
                   "first_violation_ts": None, "evidence": {"k": 1}}
    with pytest.raises(ValueError):
        check("conservation", "maybe")


def test_vandalore_bound_formula():
    # 150 Mb/s for safety*(0 + 1ms)*2 sessions, in cells
    expected = 150e6 * VANDALORE_SAFETY * 1e-3 * 2 / units.CELL_BITS
    assert vandalore_bound(150.0, 1e-3, sessions=2) == \
        pytest.approx(expected)
    # packet units shrink the count by the bits-per-unit ratio
    packets = vandalore_bound(150.0, 1e-3, sessions=2,
                              bits_per_unit=12000)
    assert packets == pytest.approx(expected * units.CELL_BITS / 12000)
    with pytest.raises(ValueError):
        vandalore_bound(0.0, 1e-3)


# ----------------------------------------------------------------------
# streaming watches
# ----------------------------------------------------------------------

def test_queue_watch_tracks_peak_and_first_violation():
    watch = QueueWatch(bound_cells=10.0)
    watch.observe((0.1, "port.enqueue", "A", {"qlen": 5}))
    watch.observe((0.2, "port.enqueue", "A", {"qlen": 12}))
    watch.observe((0.3, "port.enqueue", "A", {"qlen": 20}))
    watch.observe((0.4, "fluid.step", "B", {"queue": 3.0}))
    assert watch.peak == {"A": 20, "B": 3.0}
    assert watch.first_violation == {"A": 0.2}
    out = watch.as_check()
    assert out["verdict"] == VIOLATED
    assert out["first_violation_ts"] == 0.2


def test_queue_watch_ignores_events_without_queue_fields():
    watch = QueueWatch(bound_cells=1.0)
    watch.observe((0.0, "engine.event", "sim", {"fn": "f"}))
    assert watch.peak == {}
    assert watch.as_check()["verdict"] == PASS
    with pytest.raises(ValueError):
        QueueWatch(bound_cells=0.0)


def test_drop_watch_first_drop_and_counts():
    watch = DropWatch()
    watch.observe((0.1, "port.drop", "A", {"qlen": 9}))
    watch.observe((0.2, "port.drop", "A", {"qlen": 9}))
    watch.observe((0.3, "router.drop", "B", {"qlen": 4}))
    watch.observe((0.4, "port.enqueue", "A", {"qlen": 2}))
    assert watch.drops == {"A": 2, "B": 1}
    assert watch.first_drop == {"A": 0.1, "B": 0.3}


def test_attach_detach_roundtrip_and_none_tolerance():
    tracer = Tracer()
    watch = QueueWatch(bound_cells=5.0)
    attach(tracer, watch)
    tracer.emit(0.1, "port.enqueue", "A", qlen=7)
    detach(tracer, watch)
    tracer.emit(0.2, "port.enqueue", "A", qlen=9)
    # only the subscribed-window event reached the watch; both recorded
    assert watch.peak == {"A": 7}
    assert len(tracer.events) == 2
    attach(None, watch)   # no-ops, no crash
    detach(None, watch)


# ----------------------------------------------------------------------
# finalize-time checks on a real packet run
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def e01_run():
    return staggered_start(PhantomAlgorithm, duration=0.3)


def test_conservation_exact_on_e01(e01_run):
    out = conservation_check(e01_run)
    assert out["verdict"] == PASS
    assert out["evidence"]["unbalanced"] == []
    for ledger in out["evidence"]["ports"].values():
        assert ledger["balance"] == 0
        assert ledger["arrivals"] == (ledger["departures"]
                                      + ledger["drops"]
                                      + ledger["queued"])


def test_conservation_flags_a_tampered_counter(e01_run):
    port = next(iter(e01_run.net.trunks.values()))
    original = port.arrivals
    port.arrivals += 1
    try:
        out = conservation_check(e01_run)
        assert out["verdict"] == VIOLATED
        assert port.name in out["evidence"]["unbalanced"]
    finally:
        port.arrivals = original


def test_queue_bound_pass_on_e01(e01_run):
    out = queue_bound_check(e01_run)
    assert out["verdict"] == PASS
    assert out["first_violation_ts"] is None
    for name, peak in out["evidence"]["peak"].items():
        assert peak <= out["evidence"]["bounds"][name]


def test_queue_bound_explicit_bound_can_violate(e01_run):
    out = queue_bound_check(e01_run, bound_cells=0.5)
    assert out["verdict"] == VIOLATED
    assert out["first_violation_ts"] is not None


def test_queue_bound_merges_watch_timestamps(e01_run):
    watch = QueueWatch(bound_cells=0.5)
    # pretend the stream saw an earlier violation than the probe scan
    watch.first_violation["fake-port"] = 1e-6
    out = queue_bound_check(e01_run, bound_cells=0.5, watch=watch)
    assert out["evidence"]["violations"]["fake-port"] == 1e-6
    assert out["first_violation_ts"] == 1e-6


# ----------------------------------------------------------------------
# rate checks on synthetic series
# ----------------------------------------------------------------------

def test_convergence_check_settles_and_reports_time():
    oracle = {"s0": 100.0}
    probe = make_probe([(0.0, 0.0), (0.1, 50.0), (0.2, 99.0),
                        (0.5, 100.0)], name="s0")
    out = convergence_check({"s0": probe}, oracle, horizon=0.5)
    assert out["verdict"] == PASS
    assert out["evidence"]["settling_s"]["s0"] == pytest.approx(0.2)
    assert out["evidence"]["horizon_s"] == 0.5


def test_convergence_check_flags_unsettled_and_missing():
    oracle = {"s0": 100.0, "s1": 100.0}
    wanders = make_probe([(0.0, 0.0), (0.2, 120.0), (0.4, 80.0)],
                         name="s0")
    out = convergence_check({"s0": wanders}, oracle)
    assert out["verdict"] == VIOLATED
    assert out["evidence"]["unsettled"] == ["s0", "s1"]
    assert out["evidence"]["settling_s"] == {"s0": None, "s1": None}


def test_oscillation_check_bounds_post_settling_swing():
    oracle = {"s0": 100.0}
    # settles at t=0.2, then swings 98..102 (allowed: 2*2*.05*100=20)
    calm = make_probe([(0.0, 0.0), (0.2, 100.0), (0.3, 98.0),
                       (0.4, 102.0)], name="s0")
    out = oscillation_check({"s0": calm}, oracle, {"s0": 0.2},
                            horizon=0.4)
    assert out["verdict"] == PASS
    assert out["evidence"]["peak_to_peak"]["s0"] == pytest.approx(4.0)
    # same series judged ringing under a tiny eps
    out = oscillation_check({"s0": calm}, oracle, {"s0": 0.2},
                            eps=0.005, horizon=0.4)
    assert out["verdict"] == VIOLATED
    assert out["evidence"]["ringing"] == ["s0"]


def test_oscillation_check_skips_unsettled_sessions():
    oracle = {"s0": 100.0}
    probe = make_probe([(0.0, 0.0), (0.4, 50.0)], name="s0")
    out = oscillation_check({"s0": probe}, oracle, {"s0": None})
    assert out["verdict"] == PASS
    assert out["evidence"]["peak_to_peak"] == {}


def test_fairness_gap_check_worst_relative_error():
    oracle = {"s0": 100.0, "s1": 50.0}
    out = fairness_gap_check({"s0": 98.0, "s1": 51.0}, oracle)
    assert out["verdict"] == PASS
    assert out["evidence"]["max_rel_error"] == pytest.approx(0.02)
    out = fairness_gap_check({"s0": 80.0, "s1": 50.0}, oracle)
    assert out["verdict"] == VIOLATED
    with pytest.raises(ValueError):
        fairness_gap_check({"sX": 1.0}, oracle)


# ----------------------------------------------------------------------
# fluid conservation: replay matches the stepper bit-for-bit
# ----------------------------------------------------------------------

def test_fluid_conservation_replays_queue_integral():
    from repro.fluid.scenarios import staggered_start as fluid_staggered

    run = fluid_staggered()
    out = conservation_check(run)
    assert out["verdict"] == PASS
    assert out["evidence"]["unbalanced"] == []
    for ledger in out["evidence"]["trunks"].values():
        assert ledger["drift"] <= 1e-6 * max(1.0, abs(ledger["final"]))


def test_fluid_queue_bound_scales_with_flow_count():
    from repro.fluid.scenarios import staggered_start as fluid_staggered

    small = queue_bound_check(fluid_staggered(duration=0.1))
    big = queue_bound_check(fluid_staggered(duration=0.1,
                                            flows_per_session=10))
    (name,) = small["evidence"]["bounds"]
    assert big["evidence"]["bounds"][name] == \
        pytest.approx(10 * small["evidence"]["bounds"][name])


# ----------------------------------------------------------------------
# bit-identity: a subscribed monitor changes no simulated outcome
# ----------------------------------------------------------------------

def test_monitored_run_matches_untraced_golden_digests():
    """The tentpole's zero-interference claim, gated by the kernel's
    own golden fixtures: tracing on *and* a streaming QueueWatch
    subscribed (so every emit goes through the notify path) must be
    bit-identical to the committed untraced capture."""
    from pathlib import Path

    from repro.perf import golden

    fixtures = (Path(__file__).resolve().parents[1] / "golden"
                / "fixtures")
    name = "e01_staggered"
    expected = golden.read_trace(str(fixtures / f"{name}.json"))
    tracer = Tracer()
    watch = QueueWatch(bound_cells=10_000.0)
    drops = DropWatch()
    attach(tracer, watch, drops)
    monitored = golden.capture(name, golden.GOLDEN_SCALES[name],
                               tracer=tracer)
    assert len(tracer.events) > 0
    assert watch.peak, "watch subscribed but saw no queue events"
    assert golden.compare_traces(expected, monitored) == []
