"""Unit tests for run manifests and manifest diffing."""

import pytest

from repro.obs import (MANIFEST_SCHEMA, MANIFEST_VERSION, build_manifest,
                       diff_manifests, read_manifest, validate_manifest,
                       write_manifest)
from repro.obs.manifest import git_revision


def manifest(**overrides):
    base = dict(command="atm",
                params={"scenario": "staggered", "duration": 0.15},
                seed=7,
                metrics={"repro_sim_time_seconds": 0.15},
                wall_s=1.23456789,
                trace_path="t.jsonl")
    base.update(overrides)
    return build_manifest(base.pop("command"), base.pop("params"), **base)


def test_build_manifest_fields():
    m = manifest()
    assert m["schema"] == MANIFEST_SCHEMA
    assert m["version"] == MANIFEST_VERSION
    assert m["command"] == "atm"
    assert m["params"]["scenario"] == "staggered"
    assert m["seed"] == 7
    assert m["wall_s"] == 1.2346  # rounded: a measurement, not a result
    assert m["trace"] == "t.jsonl"
    assert isinstance(m["python"], str)
    assert isinstance(m["platform"], str)


def test_optional_fields_are_omitted_not_nulled():
    m = build_manifest("tcp", {"scenario": "many"})
    assert "wall_s" not in m
    assert "trace" not in m
    assert "metrics" not in m
    assert m["seed"] is None  # seed None is meaningful: unseeded run


def test_params_are_copied_not_aliased():
    params = {"scenario": "staggered"}
    m = build_manifest("atm", params)
    params["scenario"] = "mutated"
    assert m["params"]["scenario"] == "staggered"


def test_git_revision_in_a_work_tree():
    rev = git_revision()
    # the test suite runs from a checkout; outside one, None is fine
    if rev is not None:
        assert len(rev) == 40
        assert all(c in "0123456789abcdef" for c in rev)


def test_write_read_roundtrip(tmp_path):
    path = str(tmp_path / "run.manifest.json")
    m = manifest()
    write_manifest(path, m)
    assert read_manifest(path) == m


def test_read_rejects_non_object(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("[1, 2]\n")
    with pytest.raises(ValueError, match="not a JSON object"):
        read_manifest(str(path))


def test_validate_good_manifest():
    assert validate_manifest(manifest()) == []


def test_validate_flags_each_problem():
    problems = validate_manifest(
        {"schema": "other", "version": 0, "command": 3,
         "params": "nope", "metrics": [1]})
    assert len(problems) == 5


# ----------------------------------------------------------------------
# diffing
# ----------------------------------------------------------------------

def test_identical_manifests_diff_clean():
    assert diff_manifests(manifest(), manifest()) == []


def test_volatile_fields_skipped_by_default():
    a = manifest(wall_s=1.0, trace_path="a.jsonl")
    b = manifest(wall_s=9.0, trace_path="b.jsonl")
    b["git_rev"] = "f" * 40
    b["python"] = "0.0.0"
    assert diff_manifests(a, b) == []
    diffs = diff_manifests(a, b, include_volatile=True)
    assert any(d.startswith("wall_s:") for d in diffs)
    assert any(d.startswith("trace:") for d in diffs)
    assert any(d.startswith("git_rev:") for d in diffs)


def test_config_and_metric_differences_are_reported():
    a = manifest()
    b = manifest(seed=11)
    b["params"]["duration"] = 0.3
    b["metrics"]["repro_sim_time_seconds"] = 0.3
    diffs = diff_manifests(a, b)
    assert "seed: 7 != 11" in diffs
    assert "params.duration: 0.15 != 0.3" in diffs
    assert any(d.startswith("metrics.repro_sim_time_seconds:")
               for d in diffs)


def test_one_sided_fields_are_reported():
    a = manifest()
    b = manifest()
    del b["metrics"]["repro_sim_time_seconds"]
    b["metrics"]["repro_extra"] = 1.0
    diffs = diff_manifests(a, b)
    assert "metrics.repro_sim_time_seconds: only in first (0.15)" in diffs
    assert "metrics.repro_extra: only in second (1.0)" in diffs
