"""HealthReports: oracle gating, per-tier checks, validation, merging."""

import pytest

from repro.core import PhantomAlgorithm
from repro.fluid.scenarios import staggered_start as fluid_staggered
from repro.obs.health import (CHECK_NAMES, HEALTH_SCHEMA, HEALTH_VERSION,
                              MAX_ORACLE_FACTOR, ORACLE_CHECKS,
                              SUITE_HEALTH_SCHEMA, build_health,
                              merge_health, oracle_allocation,
                              validate_health, verdict_of)
from repro.obs.monitor import NOT_APPLICABLE, PASS, VIOLATED, check
from repro.scenarios import drop_tail_policy, rtt_fairness, staggered_start

E01_SHARE = 150.0 / 2.2   # 2 sessions + 1/5 phantom at 150 Mb/s


@pytest.fixture(scope="module")
def e01_run():
    return staggered_start(PhantomAlgorithm, duration=0.25)


@pytest.fixture(scope="module")
def e01_fluid():
    return fluid_staggered(duration=0.25)


def names_verdicts(report):
    return [(c["name"], c["verdict"]) for c in report["checks"]]


def oracle_verdicts(report):
    return {c["name"]: c["verdict"] for c in report["checks"]
            if c["name"] in ORACLE_CHECKS}


def oracle_reason(report):
    for c in report["checks"]:
        if c["name"] in ORACLE_CHECKS:
            return c["evidence"]["reason"]
    raise AssertionError("no oracle check in report")


# ----------------------------------------------------------------------
# the tentpole acceptance: E01 passes everything, both tiers
# ----------------------------------------------------------------------

def test_e01_packet_health_all_pass(e01_run):
    report = build_health(e01_run, scenario="atm.staggered", params={})
    assert report["schema"] == HEALTH_SCHEMA
    assert report["version"] == HEALTH_VERSION
    assert report["verdict"] == PASS
    assert [c["name"] for c in report["checks"]] == list(CHECK_NAMES)
    assert all(c["verdict"] == PASS for c in report["checks"])
    assert report["oracle"]["s0"] == pytest.approx(E01_SHARE)
    assert report["oracle"]["s1"] == pytest.approx(E01_SHARE)
    assert validate_health(report) == []


def test_e01_fluid_health_all_pass(e01_fluid):
    report = build_health(e01_fluid, scenario="fluid.staggered",
                          params={})
    assert report["verdict"] == PASS
    assert all(c["verdict"] == PASS for c in report["checks"])
    assert report["oracle"]["s0"] == pytest.approx(E01_SHARE)


def test_oracle_allocation_matches_paper_equilibrium(e01_run, e01_fluid):
    assert oracle_allocation(e01_run) == {
        "s0": pytest.approx(E01_SHARE), "s1": pytest.approx(E01_SHARE)}
    assert oracle_allocation(e01_fluid) == {
        "s0": pytest.approx(E01_SHARE), "s1": pytest.approx(E01_SHARE)}


def test_fluid_oracle_is_per_flow():
    # 3 flows/session x 2 sessions water-fill against one phantom
    # share: 150 / 6.2 per flow, not a third of the cohort share
    run = fluid_staggered(duration=0.06, flows_per_session=3)
    alloc = oracle_allocation(run)
    assert alloc["s0"] == pytest.approx(150.0 / 6.2)


# ----------------------------------------------------------------------
# oracle gates: when the equilibrium argument does not apply
# ----------------------------------------------------------------------

def test_gate_no_scenario_name(e01_run):
    report = build_health(e01_run)
    assert set(oracle_verdicts(report).values()) == {NOT_APPLICABLE}
    assert "no scenario name" in oracle_reason(report)
    # conservation and queue bounds still judged, so the fold is pass
    assert report["verdict"] == PASS
    assert "oracle" not in report


def test_gate_bursty_scenario(e01_run):
    report = build_health(e01_run, scenario="atm.onoff", params={})
    assert "no steady greedy" in oracle_reason(report)


def test_gate_baseline_algorithm(e01_run):
    report = build_health(e01_run, scenario="atm.staggered",
                          params={"algorithm": "erica"})
    assert "'erica'" in oracle_reason(report)


def test_gate_non_rescaling_ablation(e01_run):
    report = build_health(e01_run, scenario="atm.staggered",
                          params={"algorithm": "phantom",
                                  "algorithm_params": {"beta": 0.5}})
    assert "departs from the paper's filter" in oracle_reason(report)


def test_rescaling_ablation_keeps_its_oracle(e01_run):
    report = build_health(
        e01_run, scenario="atm.staggered",
        params={"algorithm": "phantom",
                "algorithm_params": {"utilization_factor": 5.0,
                                     "use_deviation": True}})
    assert "oracle" in report
    assert set(oracle_verdicts(report).values()) == {PASS}


def test_gate_aggressive_factor():
    from repro.core import PhantomParams

    run = fluid_staggered(duration=0.1,
                          phantom=PhantomParams(utilization_factor=15.0))
    report = build_health(run, scenario="fluid.staggered", params={})
    assert f"> {MAX_ORACLE_FACTOR:g}" in oracle_reason(report)


def test_gate_short_horizon():
    run = fluid_staggered(duration=0.02)
    report = build_health(run, scenario="fluid.staggered", params={})
    assert "under 50 control intervals" in oracle_reason(report)


def test_gate_fluid_grant_floor():
    # 100 flows/session: per-flow share 0.68 Mb/s sits under the
    # 0.05 x 150 = 7.5 Mb/s grant floor, so the band is unreachable
    run = fluid_staggered(duration=0.06, flows_per_session=100)
    report = build_health(run, scenario="fluid.staggered", params={})
    assert "below the grant floor" in oracle_reason(report)


def test_gate_fluid_binary_mode_and_rm_loss(e01_fluid):
    report = build_health(e01_fluid, scenario="fluid.staggered",
                          params={"mode": "binary"})
    assert "binary feedback" in oracle_reason(report)
    report = build_health(e01_fluid, scenario="fluid.staggered",
                          params={"rm_loss": 0.2})
    assert "RM-loss" in oracle_reason(report)


# ----------------------------------------------------------------------
# the other tiers
# ----------------------------------------------------------------------

def test_tcp_health_judges_counters_not_rates():
    run = rtt_fairness(drop_tail_policy(), duration=5.0)
    report = build_health(run, scenario="tcp.rtt", params={})
    verdicts = dict(names_verdicts(report))
    assert verdicts["conservation"] == PASS
    assert verdicts["queue_bound"] == PASS
    assert set(oracle_verdicts(report).values()) == {NOT_APPLICABLE}
    assert "no settled explicit rate" in oracle_reason(report)
    assert report["verdict"] == PASS


def test_hybrid_health_folds_both_ledgers():
    from repro.fluid.hybrid import hybrid_staggered

    run = hybrid_staggered(duration=0.1)
    report = build_health(run, scenario="hybrid.staggered", params={})
    names = [c["name"] for c in report["checks"]]
    assert names[:4] == ["conservation", "queue_bound",
                         "conservation.fluid", "queue_bound.fluid"]
    verdicts = dict(names_verdicts(report))
    assert verdicts["conservation"] == PASS
    assert verdicts["conservation.fluid"] == PASS
    assert verdicts["queue_bound.fluid"] == PASS
    assert "fluid background" in oracle_reason(report)
    assert validate_health(report) == []


def test_build_health_never_raises():
    class Broken:
        @property
        def net(self):
            raise RuntimeError("boom")

    report = build_health(Broken(), scenario="atm.staggered")
    assert report["verdict"] == NOT_APPLICABLE
    (entry,) = report["checks"]
    assert entry["name"] == "monitor_error"
    assert "RuntimeError: boom" in entry["evidence"]["error"]
    assert validate_health(report) == []


# ----------------------------------------------------------------------
# verdict algebra, validation, suite merge
# ----------------------------------------------------------------------

def test_verdict_of_is_worst_of():
    p = check("a", PASS)
    v = check("b", VIOLATED)
    n = check("c", NOT_APPLICABLE)
    assert verdict_of([p, n]) == PASS
    assert verdict_of([p, v, n]) == VIOLATED
    assert verdict_of([n, n]) == NOT_APPLICABLE


def test_validate_health_catches_malformed_reports():
    assert validate_health("nope") == ["health report is not an object"]
    good = {"schema": HEALTH_SCHEMA, "version": HEALTH_VERSION,
            "scenario": None, "eps": 0.05, "verdict": PASS,
            "checks": [check("conservation", PASS)]}
    assert validate_health(good) == []
    bad = dict(good, schema="other", version=99)
    problems = validate_health(bad)
    assert any("schema" in p for p in problems)
    assert any("version" in p for p in problems)
    assert validate_health(dict(good, checks=[])) == \
        ["checks must be a non-empty list"]
    lying = dict(good, verdict=VIOLATED)
    assert any("does not fold" in p for p in validate_health(lying))
    mangled = dict(good, checks=[{"name": 3, "verdict": "meh",
                                  "first_violation_ts": "soon",
                                  "evidence": None}])
    assert len(validate_health(mangled)) == 4


def test_merge_health_counts_and_names_violators():
    ok = {"verdict": PASS,
          "checks": [check("conservation", PASS),
                     check("convergence", PASS)]}
    sick = {"verdict": VIOLATED,
            "checks": [check("conservation", VIOLATED),
                       check("convergence", NOT_APPLICABLE)]}
    merged = merge_health({"E01": ok, "E07": sick})
    assert merged["schema"] == SUITE_HEALTH_SCHEMA
    assert merged["runs"] == 2
    assert merged["verdict"] == VIOLATED
    assert merged["verdicts"] == {PASS: 1, VIOLATED: 1,
                                  NOT_APPLICABLE: 0}
    assert merged["checks"]["conservation"] == {
        PASS: 1, VIOLATED: 1, NOT_APPLICABLE: 0}
    assert merged["violated"] == {"E07": ["conservation"]}


def test_merge_health_all_pass_is_pass():
    ok = {"verdict": PASS, "checks": [check("conservation", PASS)]}
    merged = merge_health({"E01": ok})
    assert merged["verdict"] == PASS
    assert merged["violated"] == {}
