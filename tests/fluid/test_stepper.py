"""Fluid stepper and model: fixed points, scaling, and determinism."""

import pytest

from repro.core import phantom_equilibrium_rate
from repro.fluid import (CELL_BITS, FluidNetwork, cells_to_mbps,
                         rate_cells_per_interval)
from repro.fluid import scenarios
from repro.perf.golden import probe_digest


# ----------------------------------------------------------------------
# unit helpers
# ----------------------------------------------------------------------
def test_rate_cell_conversions_roundtrip():
    rate = 68.182
    cells = rate_cells_per_interval(rate, 1e-3)
    assert cells == pytest.approx(rate * 1e6 * 1e-3 / CELL_BITS)
    assert cells_to_mbps(cells, 1e-3) == pytest.approx(rate)


def test_one_cell_per_interval_is_the_cell_rate():
    # 424 bits per millisecond is 0.424 Mb/s
    assert cells_to_mbps(1.0, 1e-3) == pytest.approx(0.424)


# ----------------------------------------------------------------------
# fixed points
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n", [1, 2, 5])
def test_staggered_converges_to_phantom_equilibrium(n):
    run = scenarios.staggered_start(n_sessions=n, duration=0.3)
    expected = phantom_equilibrium_rate(150.0, n, 5.0)
    for rate in run.steady_rates().values():
        assert rate == pytest.approx(expected, rel=0.02)
    assert run.jain() == pytest.approx(1.0, abs=1e-6)


def test_cohort_counts_share_one_grant():
    """A 3-flow cohort and a singleton get the same per-flow rate, and
    the count-weighted aggregate fills the equilibrium share of 4."""
    net = FluidNetwork()
    trunk = net.add_trunk("T", capacity_mbps=150.0)
    net.add_cohort("trio", route=["T"], count=3)
    net.add_cohort("solo", route=["T"], count=1)
    net.run(until=0.3)
    from repro.fluid.results import FluidRun

    run = FluidRun(net=net, bottleneck=trunk, duration=0.3)
    rates = run.steady_rates()
    assert rates["trio"] == pytest.approx(rates["solo"], rel=1e-6)
    expected = phantom_equilibrium_rate(150.0, 4, 5.0)
    assert rates["solo"] == pytest.approx(expected, rel=0.02)
    assert run.utilization() == pytest.approx(4 * expected / 150.0,
                                              rel=0.02)


def test_grant_is_min_over_route():
    """A cohort crossing a narrow trunk is held to the narrow grant even
    where the wide trunk would allow more."""
    net = FluidNetwork()
    net.add_trunk("wide", capacity_mbps=150.0)
    narrow = net.add_trunk("narrow", capacity_mbps=50.0)
    net.add_cohort("through", route=["wide", "narrow"])
    net.add_cohort("local", route=["wide"])
    net.run(until=0.4)
    from repro.fluid.results import FluidRun

    run = FluidRun(net=net, bottleneck=narrow, duration=0.4)
    rates = run.steady_rates()
    # the through cohort is alone at the 50 Mb/s trunk: its share there
    # is the single-session equilibrium of the narrow link
    assert rates["through"] == pytest.approx(
        phantom_equilibrium_rate(50.0, 1, 5.0), rel=0.05)
    assert rates["local"] > rates["through"]


def test_transient_reclaims_single_session_share():
    run = scenarios.transient(duration=0.4)
    expected = phantom_equilibrium_rate(150.0, 1, 5.0)  # 125 Mb/s
    assert run.steady_rates()["base"] == pytest.approx(expected,
                                                       rel=0.02)


def test_rm_loss_preserves_the_fixed_point():
    """Thinned feedback stretches time constants but moves no fixed
    point: the lossy run must land on the lossless rates."""
    clean = scenarios.staggered_start(n_sessions=2, duration=0.4)
    lossy = scenarios.staggered_start(n_sessions=2, duration=0.4,
                                      rm_loss=0.3)
    for name, rate in clean.steady_rates().items():
        assert lossy.steady_rates()[name] == pytest.approx(rate,
                                                           rel=0.05)


def test_binary_mode_is_fair_and_bounded():
    run = scenarios.staggered_start(n_sessions=2, duration=0.4,
                                    mode="binary")
    rates = run.steady_rates()
    assert run.jain() == pytest.approx(1.0, abs=0.05)
    assert 0.4 < run.utilization() <= 1.05
    for rate in rates.values():
        assert 0.0 < rate < 150.0


def test_forward_delay_keeps_the_fixed_point():
    """Propagation shifts arrivals by whole intervals; steady state is
    unchanged."""
    net = FluidNetwork()
    trunk = net.add_trunk("T", capacity_mbps=150.0)
    net.add_cohort("near", route=["T"])
    net.add_cohort("far", route=["T"], forward_delays=(5e-3,))
    net.run(until=0.4)
    from repro.fluid.results import FluidRun

    run = FluidRun(net=net, bottleneck=trunk, duration=0.4)
    rates = run.steady_rates()
    expected = phantom_equilibrium_rate(150.0, 2, 5.0)
    assert rates["near"] == pytest.approx(expected, rel=0.03)
    assert rates["far"] == pytest.approx(expected, rel=0.03)


# ----------------------------------------------------------------------
# grouping: cost per trunk, not per cohort
# ----------------------------------------------------------------------
def test_identical_cohorts_share_one_group():
    net = FluidNetwork()
    net.add_trunk("T")
    for i in range(8):
        net.add_cohort(f"c{i}", route=["T"], count=1000)
    assert len(net.groups) == 1
    assert len(net.groups[0].cohorts) == 8


def test_distinct_dynamics_split_groups():
    net = FluidNetwork()
    net.add_trunk("T")
    net.add_cohort("a", route=["T"])
    net.add_cohort("b", route=["T"], rm_loss=0.2)
    net.add_cohort("c", route=["T"], feedback_delay=5e-3)
    assert len(net.groups) == 3


def test_flow_count_does_not_change_step_count():
    small = scenarios.many_flows(cohorts=2, flows_per_cohort=10,
                                 greedy=2, duration=0.1)
    large = scenarios.many_flows(cohorts=2, flows_per_cohort=100000,
                                 greedy=2, duration=0.1)
    assert small.net.steps == large.net.steps
    assert len(small.net.groups) == len(large.net.groups)


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
def _onoff_digests(seed):
    run = scenarios.on_off(duration=0.3, seed=seed)
    return {c.name: probe_digest(c.rate_probe)
            for c in run.net.cohorts} | {
                "queue": probe_digest(run.queue_probe),
                "macr": probe_digest(run.macr_probe)}


def test_onoff_same_seed_is_bit_identical():
    assert _onoff_digests(7) == _onoff_digests(7)


def test_onoff_seed_changes_the_trajectory():
    assert _onoff_digests(7) != _onoff_digests(8)


def test_idle_reset_restarts_from_icr():
    """Silence longer than ``idle_reset`` falls back to ICR on
    reactivation (use-it-or-lose-it); a short gap keeps the old rate."""
    net = FluidNetwork()
    net.add_trunk("T")
    cohort = net.add_cohort("c", route=["T"])
    net.run(until=0.1)
    ramped = cohort.acr
    assert ramped > cohort.params.icr
    cohort.set_active(False)
    net.run(until=0.1 + 2 * cohort.params.idle_reset)
    cohort.set_active(True)
    assert cohort.acr == pytest.approx(cohort.params.icr)

    net2 = FluidNetwork()
    net2.add_trunk("T")
    c2 = net2.add_cohort("c", route=["T"])
    net2.run(until=0.1)
    ramped2 = c2.acr
    c2.set_active(False)
    net2.run(until=0.1 + 0.2 * c2.params.idle_reset)
    c2.set_active(True)
    assert c2.acr == pytest.approx(ramped2)
