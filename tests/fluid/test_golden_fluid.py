"""Golden digests for the fluid stepper: determinism, committed.

Same contract as ``tests/golden`` holds for the event kernel: every
fluid configuration here reduces to probe-series sha256 digests over
raw IEEE-754 bytes plus verbatim counters, committed in
``fixtures/fluid_golden.json``.  Any change to the stepper's arithmetic
— a reordered accumulation, a different clamp, a new term — shifts some
digest and fails here, so fluid "optimisations" are licensed the same
way kernel ones are: prove bit-identity or recapture the fixture
deliberately.

Regenerate after an intentional dynamics change with::

    PYTHONPATH=src python tests/fluid/test_golden_fluid.py --regen
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.fluid import scenarios
from repro.fluid.hybrid import hybrid_staggered
from repro.perf import golden

FIXTURE = Path(__file__).resolve().parent / "fixtures" / \
    "fluid_golden.json"


def _staggered():
    return scenarios.staggered_start(n_sessions=3, duration=0.2)


def _onoff():
    return scenarios.on_off(duration=0.3, seed=11)


def _parking():
    return scenarios.parking_lot(hops=3, duration=0.2)


def _rm_loss():
    return scenarios.staggered_start(n_sessions=2, duration=0.2,
                                     rm_loss=0.3)


def _many_small():
    return scenarios.many_flows(cohorts=10, flows_per_cohort=100,
                                greedy=5, duration=0.2)


def _hybrid():
    return hybrid_staggered(foreground=2, background=200,
                            background_demand_mbps=0.1, duration=0.15)


#: name -> builder; every entry has a committed digest set.
CONFIGS = {
    "staggered": _staggered,
    "onoff": _onoff,
    "parking": _parking,
    "rm_loss": _rm_loss,
    "many_small": _many_small,
    "hybrid": _hybrid,
}


def _capture(name: str) -> dict:
    return golden.trace_from_run(name, 1.0, CONFIGS[name]())


def _fixture() -> dict:
    return golden.read_trace(str(FIXTURE))


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_fluid_config_reproduces_golden_digests(name):
    expected = _fixture()[name]
    actual = _capture(name)
    assert golden.compare_traces(expected, actual) == []


def test_every_config_has_a_fixture_entry():
    assert sorted(_fixture()) == sorted(CONFIGS)


def test_capture_is_deterministic():
    first = _capture("onoff")
    second = _capture("onoff")
    assert golden.compare_traces(first, second) == []


def test_tracing_changes_no_fluid_outcome():
    """A fluid run with the trace bus fully enabled must reproduce the
    committed digests bit-exactly (observation invariance)."""
    from repro.obs import Tracer

    tracer = Tracer()
    run = scenarios.staggered_start(n_sessions=3, duration=0.2,
                                    tracer=tracer)
    assert len(tracer.events) > 0
    traced = golden.trace_from_run("staggered", 1.0, run)
    assert golden.compare_traces(_fixture()["staggered"], traced) == []


def _regenerate() -> None:
    import json

    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    traces = {name: _capture(name) for name in sorted(CONFIGS)}
    with open(FIXTURE, "w", encoding="utf-8") as fh:
        json.dump(traces, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {FIXTURE} ({len(traces)} configs)")


if __name__ == "__main__":  # pragma: no cover - regeneration entry
    import sys

    if "--regen" not in sys.argv:
        raise SystemExit("pass --regen to overwrite the fixture")
    _regenerate()
