"""Packet-vs-fluid validation: the committed tolerance contract.

Each test runs one packet/fluid pair at the configuration the
tolerances in :mod:`repro.fluid.validate` were measured at and asserts
every compared metric stays inside its band (the table is committed in
docs/FLUID.md).  Split per scenario so a drift names the configuration
that moved.
"""

from __future__ import annotations

import pytest

from repro.fluid import validate


def _assert_rows_ok(rows):
    problems = validate.failures(rows)
    assert problems == [], "\n".join(problems)


def test_e01_two_sessions_within_tolerance():
    _assert_rows_ok(validate.compare_staggered(n_sessions=2))


def test_e01_five_sessions_within_tolerance():
    _assert_rows_ok(validate.compare_staggered(n_sessions=5,
                                               duration=0.3))


def test_e02_onoff_within_tolerance():
    _assert_rows_ok(validate.compare_onoff())


def test_e05_parking_within_tolerance():
    _assert_rows_ok(validate.compare_parking())


def test_transient_within_tolerance():
    _assert_rows_ok(validate.compare_transient())


def test_rm_loss_within_tolerance():
    """Includes live loss injection on the packet side — the helper
    raises if no cell is actually lost."""
    _assert_rows_ok(validate.compare_rm_loss())


def test_rows_carry_the_committed_tolerances():
    rows = validate.compare_staggered(n_sessions=2)
    for row in rows:
        assert row["tolerance"] == \
            validate.TOLERANCES[row["tolerance_key"]]
    metrics = {row["metric"] for row in rows}
    assert {"rate.s0", "rate.s1", "jain", "utilization",
            "queue.max"} <= metrics


def test_failures_format_names_the_offender():
    row = {"scenario": "x", "metric": "rate.s0", "packet": 1.0,
           "fluid": 2.0, "error": 1.0, "tolerance": 0.1,
           "tolerance_key": "greedy_rate_rel", "ok": False}
    (message,) = validate.failures([row])
    assert "x.rate.s0" in message and "greedy_rate_rel" in message


def test_diverging_session_names_are_an_error():
    """Guards the name-for-name pairing the whole suite rests on."""
    from repro.core import PhantomAlgorithm
    from repro.fluid import scenarios as fluid
    from repro.scenarios import atm as packet

    p = packet.staggered_start(PhantomAlgorithm, n_sessions=2,
                               duration=0.05)
    f = fluid.staggered_start(n_sessions=3, duration=0.05)
    with pytest.raises(ValueError, match="diverge"):
        validate._common_rows("mismatch", p, f, "greedy_rate_rel")
