"""Hybrid coupling: contract unit tests and foreground accuracy."""

import pytest

from repro.baselines import EricaAlgorithm
from repro.core import phantom_equilibrium_rate
from repro.fluid.hybrid import (HybridCoupling, hybrid_staggered,
                                packet_twin)
from repro.fluid.model import FluidNetwork
from repro.perf.golden import probe_digest, run_parts


# ----------------------------------------------------------------------
# coupling contract
# ----------------------------------------------------------------------
def test_couple_rejects_algorithms_without_demand_hook():
    from repro.scenarios import atm as packet

    atm_run = packet.staggered_start(EricaAlgorithm, n_sessions=1,
                                     duration=0.05, run=False)
    fluid_net = FluidNetwork()
    trunk = fluid_net.add_trunk("T")
    coupling = HybridCoupling(atm_run.net, fluid_net)
    with pytest.raises(TypeError, match="demand_hook"):
        coupling.couple(atm_run.bottleneck, trunk)


def test_start_rejects_interval_mismatch():
    from repro.core import PhantomAlgorithm
    from repro.core.params import PhantomParams
    from repro.scenarios import atm as packet

    atm_run = packet.staggered_start(PhantomAlgorithm, n_sessions=1,
                                     duration=0.05, run=False)
    fluid_net = FluidNetwork(phantom=PhantomParams(interval=2e-3))
    trunk = fluid_net.add_trunk("T")
    coupling = HybridCoupling(atm_run.net, fluid_net)
    coupling.couple(atm_run.bottleneck, trunk)
    with pytest.raises(ValueError, match="interval"):
        coupling.start()


def test_coupling_feeds_background_demand_into_macr():
    """With the coupling live, the packet MACR must see the fluid
    background: the granted foreground rate lands near the reduced-
    capacity equilibrium, not the empty-link one."""
    run = hybrid_staggered(foreground=2, background=500,
                           background_demand_mbps=0.1, duration=0.2)
    load = 500 * 0.1
    expected = 5.0 * (150.0 - load) / (2 * 5.0 + 1)
    for rate in run.foreground_rates().values():
        assert rate == pytest.approx(expected, rel=0.15)
    # and the empty-link share would be far off
    assert all(rate < 0.8 * phantom_equilibrium_rate(150.0, 2, 5.0)
               for rate in run.foreground_rates().values())


def test_background_is_served_and_deducted():
    run = hybrid_staggered(foreground=1, background=200,
                           background_demand_mbps=0.2, duration=0.15)
    # fluid background actually flowed ...
    assert run.background_rates()["bg0"] == pytest.approx(0.2, rel=0.05)
    # ... and the packet port is serving at line minus background
    port = run.atm.bottleneck
    deducted_cell_time = port.cell_time
    assert deducted_cell_time > 424 / (150.0 * 1e6)
    # the fluid trunk saw the foreground as its service deduction
    assert run.fluid.bottleneck.service_deduction_mbps > 0.0


def test_hybrid_is_deterministic():
    def digests():
        run = hybrid_staggered(foreground=2, background=300,
                               background_demand_mbps=0.1,
                               duration=0.12)
        probes, counters = run_parts(run)
        return ({name: probe_digest(p) for name, p in probes.items()},
                counters)

    assert digests() == digests()


# ----------------------------------------------------------------------
# foreground accuracy vs the all-packet twin
# ----------------------------------------------------------------------
def test_foreground_matches_packet_twin():
    """Matched-load comparison at the validation config: the hybrid
    foreground must land within the documented band of the all-packet
    twin (docs/FLUID.md — the residual gap is packet MACR quantisation
    noise through the asymmetric filter, not coupling error)."""
    kwargs = dict(foreground=2, background=500,
                  background_demand_mbps=0.2, duration=0.25)
    hybrid = hybrid_staggered(**kwargs)
    twin = packet_twin(**kwargs)
    twin_fg = {vc: rate for vc, rate in twin.steady_rates().items()
               if not vc.startswith("bg")}
    load = 500 * 0.2
    expected = 5.0 * (150.0 - load) / (2 * 5.0 + 1)
    for vc, twin_rate in twin_fg.items():
        hybrid_rate = hybrid.foreground_rates()[vc]
        assert hybrid_rate == pytest.approx(twin_rate, rel=0.25)
        # both sides must also sit near the analytic reduced-capacity
        # share — this pins the comparison to the right fixed point
        assert hybrid_rate == pytest.approx(expected, rel=0.15)
        assert twin_rate == pytest.approx(expected, rel=0.25)


def test_hybrid_exec_entry_round_trips():
    from repro.exec.spec import TaskSpec
    from repro.exec.worker import execute_task

    spec = TaskSpec(task_id="t", scenario="fluid.hybrid_e01",
                    params={"foreground": 2, "background": 100,
                            "background_demand_mbps": 0.2,
                            "duration": 0.1})
    out = execute_task({"spec": spec.to_dict()})
    assert out["status"] == "ok", out.get("error")
    assert "rates.s0" in out["metrics"]
    # digests cover both the packet foreground and the fluid mirror
    names = set(out["probe_digests"])
    assert any(name.endswith(":fluid.queue") or ":fluid" in name
               for name in names), sorted(names)
