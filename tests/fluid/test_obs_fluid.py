"""Fluid tier through the observability surface (manifest + trace)."""

from repro.fluid import scenarios
from repro.fluid.hybrid import hybrid_staggered
from repro.obs import Tracer, registry_from_run


def test_fluid_category_is_registered():
    # a typo'd category set must fail loudly, so "fluid" has to be known
    tracer = Tracer(categories={"fluid"})
    assert tracer.enabled("fluid")
    assert tracer.gate("fluid") is tracer
    assert tracer.gate("port") is None


def test_fluid_trace_events_are_emitted_and_gated():
    tracer = Tracer(categories={"fluid"})
    run = scenarios.staggered_start(n_sessions=2, duration=0.05,
                                    tracer=tracer)
    assert run.net.steps == 50
    kinds = {kind for _, kind, _, _ in tracer.events}
    assert kinds == {"fluid.step"}
    ts, kind, comp, fields = tracer.events[0]
    assert comp == "S1->S2"
    assert {"macr", "queue", "offered", "grant"} <= set(fields)

    gated_off = Tracer(categories={"port"})
    run2 = scenarios.staggered_start(n_sessions=2, duration=0.05,
                                     tracer=gated_off)
    assert gated_off.events == []
    assert run2.net.steps == 50


def test_registry_from_fluid_run():
    run = scenarios.staggered_start(n_sessions=2, duration=0.05)
    summary = registry_from_run(run).summary()
    assert summary["repro_fluid_steps_total"] == 50
    assert summary["repro_fluid_time_seconds"] == run.net.now
    assert summary['repro_fluid_macr_mbps{trunk="S1->S2"}'] > 0
    assert summary['repro_fluid_acr_mbps{cohort="s0"}'] > 0
    assert summary['repro_fluid_flows{cohort="s1"}'] == 1
    # probe folding: queue series registered for the trunk
    assert any(key.startswith("repro_fluid_trunk_queue_cells")
               for key in summary)


def test_registry_from_hybrid_run_has_both_sides():
    run = hybrid_staggered(foreground=2, background=100,
                           background_demand_mbps=0.1, duration=0.05)
    summary = registry_from_run(run).summary()
    # packet foreground metrics ...
    assert summary['repro_cells_sent_total{vc="s0"}'] > 0
    assert summary["repro_sim_executed_events_total"] > 0
    # ... and fluid background metrics, under distinct names (the
    # coupling pre-steps the fluid side once before the first tick)
    assert summary["repro_fluid_steps_total"] == 51
    assert summary['repro_fluid_flows{cohort="bg0"}'] == 100


def test_fluid_prometheus_export_is_well_formed():
    run = scenarios.staggered_start(n_sessions=2, duration=0.05)
    text = registry_from_run(run).prometheus_text()
    assert "# TYPE repro_fluid_steps_total counter" in text
    assert 'repro_fluid_macr_mbps{trunk="S1->S2"}' in text
